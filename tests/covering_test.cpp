#include "pscd/pubsub/covering.h"

#include <gtest/gtest.h>

#include "pscd/util/rng.h"

namespace pscd {
namespace {

Subscription sub(std::vector<Predicate> preds, ProxyId proxy = 0) {
  Subscription s;
  s.proxy = proxy;
  s.conjuncts = std::move(preds);
  return s;
}

const Predicate kCat1{Predicate::Kind::kCategoryEq, 1};
const Predicate kCat2{Predicate::Kind::kCategoryEq, 2};
const Predicate kKw7{Predicate::Kind::kKeywordContains, 7};
const Predicate kPage5{Predicate::Kind::kPageIdEq, 5};

TEST(NormalizeTest, SortsAndDeduplicates) {
  const auto n = normalizeConjuncts({kKw7, kCat1, kKw7, kCat1});
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], kCat1);
  EXPECT_EQ(n[1], kKw7);
}

TEST(CoversTest, SubsetCovers) {
  // {cat==1} covers {cat==1 AND kw~7}: fewer constraints match more.
  EXPECT_TRUE(covers(sub({kCat1}), sub({kCat1, kKw7})));
  EXPECT_FALSE(covers(sub({kCat1, kKw7}), sub({kCat1})));
}

TEST(CoversTest, SelfCovering) {
  EXPECT_TRUE(covers(sub({kCat1, kKw7}), sub({kKw7, kCat1})));
}

TEST(CoversTest, DisjointDoNotCover) {
  EXPECT_FALSE(covers(sub({kCat1}), sub({kCat2})));
  EXPECT_FALSE(covers(sub({kCat1}), sub({kKw7})));
}

TEST(CoversTest, EmptyNeverCovers) {
  EXPECT_FALSE(covers(sub({}), sub({kCat1})));
}

TEST(CoversTest, SemanticSoundnessOnEvents) {
  // If a covers b, every event matching b must match a.
  const auto a = sub({kCat1});
  const auto b = sub({kCat1, kKw7});
  ASSERT_TRUE(covers(a, b));
  ContentAttributes e;
  e.page = 5;
  e.category = 1;
  e.keywords = {7};
  EXPECT_TRUE(b.matches(e));
  EXPECT_TRUE(a.matches(e));
}

TEST(CoveringSetTest, AbsorbsCoveredAdditions) {
  CoveringSet set;
  EXPECT_TRUE(set.add(sub({kCat1})));
  EXPECT_FALSE(set.add(sub({kCat1, kKw7})));  // covered
  EXPECT_EQ(set.size(), 1u);
}

TEST(CoveringSetTest, NewcomerEvictsCoveredMembers) {
  CoveringSet set;
  EXPECT_TRUE(set.add(sub({kCat1, kKw7})));
  EXPECT_TRUE(set.add(sub({kCat2, kKw7})));
  EXPECT_EQ(set.size(), 2u);
  // {kw~7} covers both members: frontier collapses to one entry.
  EXPECT_TRUE(set.add(sub({kKw7})));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CoveringSetTest, DuplicateAbsorbed) {
  CoveringSet set;
  EXPECT_TRUE(set.add(sub({kPage5})));
  EXPECT_FALSE(set.add(sub({kPage5})));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CoveringSetTest, IsCoveredAndMatches) {
  CoveringSet set;
  set.add(sub({kCat1}));
  EXPECT_TRUE(set.isCovered(sub({kCat1, kPage5})));
  EXPECT_FALSE(set.isCovered(sub({kCat2})));
  ContentAttributes e;
  e.category = 1;
  EXPECT_TRUE(set.matches(e));
  e.category = 2;
  EXPECT_FALSE(set.matches(e));
}

TEST(CoveringSetTest, FrontierEquivalentToFullSet) {
  // Property: for random subscription batches, the covering frontier
  // matches exactly the same events as the full set.
  Rng rng(11);
  std::vector<Subscription> all;
  CoveringSet frontier;
  for (int i = 0; i < 200; ++i) {
    Subscription s;
    const int n = 1 + static_cast<int>(rng.uniformInt(std::uint64_t{2}));
    for (int k = 0; k < n; ++k) {
      Predicate p;
      p.kind = rng.bernoulli(0.5) ? Predicate::Kind::kCategoryEq
                                  : Predicate::Kind::kKeywordContains;
      p.value = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{4}));
      s.conjuncts.push_back(p);
    }
    all.push_back(s);
    frontier.add(s);
  }
  for (int trial = 0; trial < 200; ++trial) {
    ContentAttributes e;
    e.category = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{4}));
    if (rng.bernoulli(0.7)) {
      e.keywords.push_back(
          static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{4})));
    }
    bool fullMatch = false;
    for (const auto& s : all) fullMatch |= s.matches(e);
    EXPECT_EQ(frontier.matches(e), fullMatch);
  }
}

}  // namespace
}  // namespace pscd
