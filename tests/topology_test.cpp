#include <gtest/gtest.h>

#include <cmath>

#include "pscd/topology/barabasi_albert.h"
#include "pscd/topology/network.h"
#include "pscd/topology/shortest_path.h"
#include "pscd/topology/waxman.h"

namespace pscd {
namespace {

TEST(WaxmanTest, ProducesConnectedGraph) {
  Rng rng(1);
  const auto t = generateWaxman({.numNodes = 80}, rng);
  EXPECT_EQ(t.graph.numNodes(), 80u);
  EXPECT_TRUE(t.graph.isConnected());
  EXPECT_EQ(t.x.size(), 80u);
  EXPECT_EQ(t.y.size(), 80u);
}

TEST(WaxmanTest, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const auto ta = generateWaxman({.numNodes = 40}, a);
  const auto tb = generateWaxman({.numNodes = 40}, b);
  EXPECT_EQ(ta.graph.numEdges(), tb.graph.numEdges());
  for (NodeId n = 0; n < 40; ++n) {
    EXPECT_DOUBLE_EQ(ta.x[n], tb.x[n]);
    EXPECT_DOUBLE_EQ(ta.y[n], tb.y[n]);
  }
}

TEST(WaxmanTest, HigherAlphaMeansMoreEdges) {
  Rng a(3), b(3);
  const auto sparse = generateWaxman({.numNodes = 60, .alpha = 0.05}, a);
  const auto dense = generateWaxman({.numNodes = 60, .alpha = 0.9}, b);
  EXPECT_GT(dense.graph.numEdges(), sparse.graph.numEdges());
}

TEST(WaxmanTest, CoordinatesInsidePlane) {
  Rng rng(4);
  const auto t = generateWaxman({.numNodes = 30, .plane = 500.0}, rng);
  for (NodeId n = 0; n < 30; ++n) {
    EXPECT_GE(t.x[n], 0.0);
    EXPECT_LT(t.x[n], 500.0);
    EXPECT_GE(t.y[n], 0.0);
    EXPECT_LT(t.y[n], 500.0);
  }
}

TEST(WaxmanTest, RejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(generateWaxman({.numNodes = 0}, rng), std::invalid_argument);
  EXPECT_THROW(generateWaxman({.numNodes = 5, .alpha = 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(generateWaxman({.numNodes = 5, .beta = -1.0}, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbertTest, ConnectedAndRightEdgeCount) {
  Rng rng(2);
  const auto g =
      generateBarabasiAlbert({.numNodes = 100, .edgesPerNode = 2}, rng);
  EXPECT_TRUE(g.isConnected());
  // clique(3) has 3 edges, then 97 nodes x 2 edges.
  EXPECT_EQ(g.numEdges(), 3u + 97u * 2u);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  Rng rng(6);
  const auto g =
      generateBarabasiAlbert({.numNodes = 300, .edgesPerNode = 2}, rng);
  std::uint32_t maxDeg = 0;
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    maxDeg = std::max(maxDeg, g.degree(n));
  }
  // Scale-free graphs grow hubs well above the mean degree (~4).
  EXPECT_GT(maxDeg, 12u);
}

TEST(BarabasiAlbertTest, RejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(generateBarabasiAlbert({.numNodes = 2, .edgesPerNode = 2}, rng),
               std::invalid_argument);
  EXPECT_THROW(generateBarabasiAlbert({.numNodes = 9, .edgesPerNode = 0}, rng),
               std::invalid_argument);
}

TEST(ShortestPathTest, SimpleChain) {
  Graph g(4);
  g.addEdge(0, 1, 1.0);
  g.addEdge(1, 2, 2.0);
  g.addEdge(2, 3, 3.0);
  const auto d = shortestPaths(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 6.0);
}

TEST(ShortestPathTest, PicksShorterRoute) {
  Graph g(3);
  g.addEdge(0, 1, 10.0);
  g.addEdge(0, 2, 1.0);
  g.addEdge(2, 1, 2.0);
  const auto d = shortestPaths(g, 0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

TEST(ShortestPathTest, UnreachableIsInfinite) {
  Graph g(3);
  g.addEdge(0, 1, 1.0);
  const auto d = shortestPaths(g, 0);
  EXPECT_TRUE(std::isinf(d[2]));
}

TEST(ShortestPathTest, RejectsBadSource) {
  Graph g(2);
  EXPECT_THROW(shortestPaths(g, 7), std::out_of_range);
}

TEST(NetworkTest, FetchCostsNormalizedToMeanOne) {
  Rng rng(7);
  const Network net(NetworkParams{.numProxies = 50}, rng);
  EXPECT_EQ(net.numProxies(), 50u);
  double sum = 0.0;
  for (ProxyId p = 0; p < 50; ++p) {
    EXPECT_GT(net.fetchCost(p), 0.0);
    sum += net.fetchCost(p);
  }
  EXPECT_NEAR(sum / 50.0, 1.0, 0.05);  // small clamp-induced slack
}

TEST(NetworkTest, ProxiesMapToDistinctNodes) {
  Rng rng(8);
  const Network net(NetworkParams{.numProxies = 20, .numTransitNodes = 10},
                    rng);
  std::set<NodeId> nodes;
  nodes.insert(net.publisherNode());
  for (ProxyId p = 0; p < 20; ++p) nodes.insert(net.proxyNode(p));
  EXPECT_EQ(nodes.size(), 21u);
}

TEST(NetworkTest, BarabasiAlbertModelWorks) {
  Rng rng(9);
  NetworkParams params;
  params.numProxies = 30;
  params.model = TopologyModel::kBarabasiAlbert;
  const Network net(params, rng);
  EXPECT_EQ(net.numProxies(), 30u);
  for (ProxyId p = 0; p < 30; ++p) EXPECT_GT(net.fetchCost(p), 0.0);
}

TEST(NetworkTest, RejectsZeroProxies) {
  Rng rng(1);
  EXPECT_THROW(Network(NetworkParams{.numProxies = 0}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace pscd
