#include "pscd/util/log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pscd {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    old_ = std::cerr.rdbuf(captured_.rdbuf());
    setLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    std::cerr.rdbuf(old_);
    setLogLevel(LogLevel::kInfo);
  }
  std::ostringstream captured_;
  std::streambuf* old_ = nullptr;
};

TEST_F(LogTest, InfoEmitsAtInfoLevel) {
  logInfo() << "hello " << 42;
  EXPECT_EQ(captured_.str(), "[INFO] hello 42\n");
}

TEST_F(LogTest, DebugSuppressedAtInfoLevel) {
  logDebug() << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LogTest, LevelFiltering) {
  setLogLevel(LogLevel::kError);
  logWarn() << "warn";
  EXPECT_TRUE(captured_.str().empty());
  logError() << "bad";
  EXPECT_EQ(captured_.str(), "[ERROR] bad\n");
}

TEST_F(LogTest, LevelRoundTrip) {
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  logDebug() << "dbg";
  EXPECT_EQ(captured_.str(), "[DEBUG] dbg\n");
}

}  // namespace
}  // namespace pscd
