#include "pscd/util/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pscd {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    old_ = std::cerr.rdbuf(captured_.rdbuf());
    setLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    std::cerr.rdbuf(old_);
    setLogLevel(LogLevel::kInfo);
  }
  std::ostringstream captured_;
  std::streambuf* old_ = nullptr;
};

TEST_F(LogTest, InfoEmitsAtInfoLevel) {
  logInfo() << "hello " << 42;
  EXPECT_EQ(captured_.str(), "[INFO] hello 42\n");
}

TEST_F(LogTest, DebugSuppressedAtInfoLevel) {
  logDebug() << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LogTest, LevelFiltering) {
  setLogLevel(LogLevel::kError);
  logWarn() << "warn";
  EXPECT_TRUE(captured_.str().empty());
  logError() << "bad";
  EXPECT_EQ(captured_.str(), "[ERROR] bad\n");
}

TEST_F(LogTest, SinkRedirectAndRestore) {
  std::ostringstream sink;
  std::ostream* previous = setLogSink(&sink);
  EXPECT_EQ(previous, nullptr);
  logInfo() << "to the sink";
  EXPECT_EQ(sink.str(), "[INFO] to the sink\n");
  EXPECT_TRUE(captured_.str().empty());  // nothing hit stderr
  EXPECT_EQ(setLogSink(nullptr), &sink);
  logInfo() << "back to stderr";
  EXPECT_EQ(captured_.str(), "[INFO] back to stderr\n");
}

TEST_F(LogTest, EightThreadStressNoTornLines) {
  // Satellite 1 regression test: 8 threads hammer the logger; every
  // captured line must be exactly one writer's full message — a torn or
  // interleaved line would fail the per-line format check below.
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 500;
  std::ostringstream sink;
  setLogSink(&sink);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        logInfo() << "thread " << t << " line " << i << " payload "
                  << std::string(32, 'a' + static_cast<char>(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  setLogSink(nullptr);

  std::map<int, int> perThread;
  std::istringstream in(sink.str());
  std::string line;
  int total = 0;
  while (std::getline(in, line)) {
    ++total;
    int t = -1, i = -1;
    char payload[64] = {0};
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "[INFO] thread %d line %d payload %63s", &t, &i,
                          payload),
              3)
        << "torn line: " << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(std::string(payload),
              std::string(32, 'a' + static_cast<char>(t)))
        << "interleaved payload: " << line;
    ++perThread[t];
  }
  EXPECT_EQ(total, kThreads * kLinesPerThread);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(perThread[t], kLinesPerThread);
}

TEST_F(LogTest, LevelRoundTrip) {
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  logDebug() << "dbg";
  EXPECT_EQ(captured_.str(), "[DEBUG] dbg\n");
}

}  // namespace
}  // namespace pscd
