#include "pscd/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pscd/util/check.h"

namespace pscd {
namespace {

TEST(ResolveJobsTest, ZeroMeansHardwareConcurrency) {
  const unsigned resolved = resolveJobs(0);
  EXPECT_GE(resolved, 1u);
}

TEST(ResolveJobsTest, ExplicitValuePassesThrough) {
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(4), 4u);
  EXPECT_EQ(resolveJobs(17), 17u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&count] { ++count; }));
    }
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroTasksShutsDownCleanly) {
  ThreadPool pool(4);
  pool.shutdown();
  EXPECT_TRUE(pool.shutdownStarted());
}

TEST(ThreadPoolTest, TenThousandTasksAllRun) {
  std::atomic<std::uint64_t> sum{0};
  {
    ThreadPool pool(8);
    for (std::uint64_t i = 1; i <= 10000; ++i) {
      ASSERT_TRUE(pool.submit([&sum, i] { sum += i; }));
    }
  }
  EXPECT_EQ(sum.load(), 10000ull * 10001ull / 2);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.submit([&count] { ++count; }));
  pool.shutdown();
  EXPECT_TRUE(pool.shutdownStarted());
  EXPECT_FALSE(pool.submit([&count] { ++count; }));
  pool.shutdown();  // idempotent
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, TaskExceptionSurfacedViaRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  pool.shutdown();
  EXPECT_THROW(pool.rethrowIfTaskFailed(), std::runtime_error);
  // The error is cleared after the rethrow.
  EXPECT_NO_THROW(pool.rethrowIfTaskFailed());
}

TEST(ThreadPoolTest, FirstExceptionWinsOthersSwallowed) {
  ThreadPool pool(1);  // single worker => deterministic task order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  pool.shutdown();
  try {
    pool.rethrowIfTaskFailed();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(LatchTest, WaitReturnsAfterAllCountdowns) {
  Latch latch(3);
  ThreadPool pool(3);
  for (int i = 0; i < 3; ++i) {
    pool.submit([&latch] { latch.countDown(); });
  }
  latch.wait();  // must not deadlock
  pool.shutdown();
}

TEST(LatchTest, ZeroExpectedWaitsImmediately) {
  Latch latch(0);
  latch.wait();
}

TEST(LatchTest, WaitRethrowsRecordedError) {
  Latch latch(2);
  latch.countDown(std::make_exception_ptr(std::runtime_error("cell failed")));
  latch.countDown();
  EXPECT_THROW(latch.wait(), std::runtime_error);
}

TEST(RunAllTest, InlineWhenPoolIsNull) {
  // Null pool = serial path: tasks run in order on the calling thread.
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  runAll(nullptr, std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RunAllTest, EmptyBatchIsNoOp) {
  runAll(nullptr, {});
  ThreadPool pool(2);
  runAll(&pool, {});
}

TEST(RunAllTest, AllTasksCompleteOnPool) {
  std::vector<int> slots(1000, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  ThreadPool pool(8);
  runAll(&pool, std::move(tasks));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(RunAllTest, ExceptionRethrownAfterBatchDrains) {
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("early failure"); });
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&completed] { ++completed; });
  }
  ThreadPool pool(4);
  EXPECT_THROW(runAll(&pool, std::move(tasks)), std::runtime_error);
  // Every other task still ran: a failure never abandons the batch.
  EXPECT_EQ(completed.load(), 50);
}

TEST(RunAllTest, SerialPathPropagatesException) {
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::logic_error("serial failure"); });
  EXPECT_THROW(runAll(nullptr, std::move(tasks)), std::logic_error);
}

TEST(RunAllTest, SerialPathDrainsBatchBeforeRethrow) {
  // The serial path matches the pool path: a failing task never
  // abandons the rest of the batch, and the *first* error wins.
  int completed = 0;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("first failure"); });
  tasks.push_back([&completed] { ++completed; });
  tasks.push_back([] { throw std::logic_error("second failure"); });
  tasks.push_back([&completed] { ++completed; });
  EXPECT_THROW(runAll(nullptr, std::move(tasks)), std::runtime_error);
  EXPECT_EQ(completed, 2);
}

TEST(RunAllTest, ShutDownPoolIsRejectedByCheck) {
  ThreadPool pool(2);
  pool.shutdown();
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  EXPECT_THROW(runAll(&pool, std::move(tasks)), CheckFailure);
}

}  // namespace
}  // namespace pscd
