#include "pscd/util/args.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

ArgParser makeParser() {
  ArgParser p("prog", "test program");
  p.addOption("name", "a string", "default");
  p.addOption("count", "an integer", "3");
  p.addOption("ratio", "a double", "0.5");
  p.addFlag("verbose", "talk more");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, DefaultsApply) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.option("name"), "default");
  EXPECT_EQ(p.optionInt("count"), 3);
  EXPECT_DOUBLE_EQ(p.optionDouble("ratio"), 0.5);
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(ArgsTest, SpaceSeparatedValues) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--name", "abc", "--count", "42"}));
  EXPECT_EQ(p.option("name"), "abc");
  EXPECT_EQ(p.optionInt("count"), 42);
}

TEST(ArgsTest, EqualsSeparatedValues) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--ratio=0.25", "--name=x=y"}));
  EXPECT_DOUBLE_EQ(p.optionDouble("ratio"), 0.25);
  EXPECT_EQ(p.option("name"), "x=y");
}

TEST(ArgsTest, FlagsParse) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--verbose"}));
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgsTest, HelpReturnsFalseWithoutError) {
  auto p = makeParser();
  EXPECT_FALSE(parse(p, {"--help"}));
  EXPECT_TRUE(p.error().empty());
  EXPECT_NE(p.help().find("--count"), std::string::npos);
  EXPECT_NE(p.help().find("default: 3"), std::string::npos);
}

TEST(ArgsTest, ErrorsReported) {
  auto p = makeParser();
  EXPECT_FALSE(parse(p, {"--nope"}));
  EXPECT_NE(p.error().find("unknown option"), std::string::npos);
  EXPECT_FALSE(parse(p, {"--name"}));
  EXPECT_NE(p.error().find("missing value"), std::string::npos);
  EXPECT_FALSE(parse(p, {"positional"}));
  EXPECT_NE(p.error().find("positional"), std::string::npos);
  EXPECT_FALSE(parse(p, {"--verbose=1"}));
  EXPECT_NE(p.error().find("takes no value"), std::string::npos);
}

TEST(ArgsTest, TypeErrorsThrow) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--count", "abc", "--ratio", "x"}));
  EXPECT_THROW(p.optionInt("count"), std::invalid_argument);
  EXPECT_THROW(p.optionDouble("ratio"), std::invalid_argument);
}

TEST(ArgsTest, UndeclaredAccessThrows) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.option("missing"), std::logic_error);
  EXPECT_THROW(p.flag("name"), std::logic_error);    // option, not flag
  EXPECT_THROW(p.option("verbose"), std::logic_error);  // flag, not option
}

TEST(ArgsTest, MalformedInputRejectedWithNamedError) {
  auto p = makeParser();
  EXPECT_FALSE(parse(p, {"--"}));
  EXPECT_NE(p.error().find("missing option name"), std::string::npos);
  EXPECT_FALSE(parse(p, {"--=value"}));
  EXPECT_NE(p.error().find("missing option name"), std::string::npos);
  EXPECT_FALSE(parse(p, {nullptr}));
  EXPECT_NE(p.error().find("null argument"), std::string::npos);
}

TEST(ArgsTest, NonFiniteAndOverflowingDoublesThrow) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--ratio", "nan"}));
  EXPECT_THROW(p.optionDouble("ratio"), std::invalid_argument);
  ASSERT_TRUE(parse(p, {"--ratio", "inf"}));
  EXPECT_THROW(p.optionDouble("ratio"), std::invalid_argument);
  ASSERT_TRUE(parse(p, {"--ratio", "1e999"}));
  EXPECT_THROW(p.optionDouble("ratio"), std::invalid_argument);
  ASSERT_TRUE(parse(p, {"--ratio", "0x1p2"}));  // hexfloat stays accepted
  EXPECT_DOUBLE_EQ(p.optionDouble("ratio"), 4.0);
}

TEST(ArgsTest, EmbeddedJunkBytesAreJustStrings) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--name", "\x01\xff\x7f"}));
  EXPECT_EQ(p.option("name"), "\x01\xff\x7f");
  ASSERT_TRUE(parse(p, {"--count", "9223372036854775807"}));
  EXPECT_EQ(p.optionInt("count"), 9223372036854775807ll);
  ASSERT_TRUE(parse(p, {"--count", "9223372036854775808"}));  // overflow
  EXPECT_THROW(p.optionInt("count"), std::invalid_argument);
}

TEST(ArgsTest, ReparseResetsState) {
  auto p = makeParser();
  ASSERT_TRUE(parse(p, {"--verbose", "--name", "a"}));
  ASSERT_TRUE(parse(p, {}));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.option("name"), "default");
}

}  // namespace
}  // namespace pscd
