#include "pscd/workload/subscriptions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pscd {
namespace {

std::vector<RequestEvent> makeRequests() {
  // page 0: 4 requests at proxy 0, 2 at proxy 1; page 2: 1 at proxy 3.
  std::vector<RequestEvent> reqs;
  for (int i = 0; i < 4; ++i) reqs.push_back({1.0 * i, 0, 0, true});
  for (int i = 0; i < 2; ++i) reqs.push_back({10.0 + i, 0, 1, true});
  reqs.push_back({20.0, 2, 3, true});
  return reqs;
}

TEST(SubscriptionsTest, PerfectQualityEqualsRequestCounts) {
  Rng rng(1);
  SubscriptionParams p;
  p.quality = 1.0;
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  ASSERT_EQ(t.offsets.size(), 5u);
  // Row for page 0: (proxy 0, 4), (proxy 1, 2).
  ASSERT_EQ(t.offsets[1] - t.offsets[0], 2u);
  EXPECT_EQ(t.entries[t.offsets[0]], (Notification{0, 4}));
  EXPECT_EQ(t.entries[t.offsets[0] + 1], (Notification{1, 2}));
  // Page 1 has no requests -> empty row.
  EXPECT_EQ(t.offsets[2] - t.offsets[1], 0u);
  // Page 2: single entry.
  EXPECT_EQ(t.entries[t.offsets[2]], (Notification{3, 1}));
}

TEST(SubscriptionsTest, LowerQualityInflatesCounts) {
  Rng rng(2);
  SubscriptionParams p;
  p.quality = 0.5;
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  // SQ_{i,j} <= 2*0.5 = 1, so counts never shrink below the requests.
  EXPECT_GE(t.entries[t.offsets[0]].matchCount, 4u);
  // And with the 0.05 clamp they cannot exceed P/0.05.
  EXPECT_LE(t.entries[t.offsets[0]].matchCount, 80u);
}

TEST(SubscriptionsTest, HighQualityBounds) {
  Rng rng(3);
  SubscriptionParams p;
  p.quality = 0.75;  // SQ_{i,j} uniform in [0.5, 1]
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  const auto subs = t.entries[t.offsets[0]].matchCount;
  EXPECT_GE(subs, 4u);
  EXPECT_LE(subs, 8u);
}

TEST(SubscriptionsTest, StatisticalMeanMatchesQuality) {
  // With many (page, proxy) pairs of P = 8 and SQ = 0.8 the average
  // subscription count approaches P * E[1/SQ_{i,j}].
  std::vector<RequestEvent> reqs;
  const std::uint32_t pages = 2000;
  for (PageId p = 0; p < pages; ++p) {
    for (int k = 0; k < 8; ++k) reqs.push_back({1.0, p, 0, true});
  }
  Rng rng(4);
  SubscriptionParams sp;
  sp.quality = 0.8;
  const auto t = generateSubscriptions(sp, reqs, pages, 1, rng);
  double sum = 0.0;
  for (const auto& e : t.entries) sum += e.matchCount;
  // E[1/U(0.6, 1.0)] = ln(1/0.6)/0.4 ~ 1.277 -> mean ~ 10.2.
  EXPECT_NEAR(sum / pages, 8.0 * std::log(1.0 / 0.6) / 0.4, 0.3);
}

TEST(SubscriptionsTest, NonDrivenRequestsExcluded) {
  std::vector<RequestEvent> reqs = makeRequests();
  for (auto& r : reqs) r.notificationDriven = false;
  reqs.push_back({30.0, 3, 2, true});
  Rng rng(5);
  SubscriptionParams p;
  const auto t = generateSubscriptions(p, reqs, 4, 5, rng);
  // Only the one driven request contributes.
  EXPECT_EQ(t.entries.size(), 1u);
  EXPECT_EQ(t.entries[0], (Notification{2, 1}));
}

TEST(SubscriptionsTest, CsrRowsSortedByProxy) {
  std::vector<RequestEvent> reqs;
  for (ProxyId proxy : {7u, 2u, 9u, 4u}) reqs.push_back({1.0, 0, proxy, true});
  Rng rng(6);
  const auto t = generateSubscriptions({}, reqs, 1, 10, rng);
  ASSERT_EQ(t.entries.size(), 4u);
  for (std::size_t i = 1; i < t.entries.size(); ++i) {
    EXPECT_LT(t.entries[i - 1].proxy, t.entries[i].proxy);
  }
}

TEST(SubscriptionChurnTest, ZeroRateMeansNoEvents) {
  Rng rng(8);
  SubscriptionParams p;
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  std::vector<PageInfo> pages(4);
  for (std::uint32_t i = 0; i < 4; ++i) pages[i].popularityRank = i + 1;
  EXPECT_TRUE(
      generateSubscriptionChurn(p, t, pages, 1.5, 7 * kDay, rng).empty());
}

TEST(SubscriptionChurnTest, EventCountMatchesRate) {
  Rng rng(9);
  SubscriptionParams p;
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  // 7 subscriptions total; 0.5/day over 7 days => ~24 events.
  p.churnPerDay = 0.5;
  std::vector<PageInfo> pages(4);
  for (std::uint32_t i = 0; i < 4; ++i) pages[i].popularityRank = i + 1;
  const auto events =
      generateSubscriptionChurn(p, t, pages, 1.5, 7 * kDay, rng);
  EXPECT_EQ(events.size(), 24u);
  SimTime prev = 0.0;
  for (const auto& e : events) {
    EXPECT_GE(e.time, prev);
    EXPECT_LE(e.time, 7 * kDay);
    EXPECT_LT(e.proxy, 5u);
    EXPECT_LT(e.fromPage, 4u);
    EXPECT_LT(e.toPage, 4u);
    prev = e.time;
  }
}

TEST(SubscriptionChurnTest, SourcesAreExistingEntries) {
  Rng rng(10);
  SubscriptionParams p;
  const auto t = generateSubscriptions(p, makeRequests(), 4, 5, rng);
  p.churnPerDay = 1.0;
  std::vector<PageInfo> pages(4);
  for (std::uint32_t i = 0; i < 4; ++i) pages[i].popularityRank = i + 1;
  const auto events =
      generateSubscriptionChurn(p, t, pages, 1.5, 7 * kDay, rng);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    bool found = false;
    for (std::uint32_t k = t.offsets[e.fromPage];
         k < t.offsets[e.fromPage + 1]; ++k) {
      found |= t.entries[k].proxy == e.proxy;
    }
    EXPECT_TRUE(found) << "churn source is not a subscribed pair";
  }
}

TEST(SubscriptionChurnTest, NegativeRateRejected) {
  Rng rng(11);
  SubscriptionParams p;
  p.churnPerDay = -0.1;
  SubscriptionTable t;
  t.offsets = {0, 0};
  EXPECT_THROW(
      generateSubscriptionChurn(p, t, {PageInfo{}}, 1.5, kDay, rng),
      std::invalid_argument);
}

TEST(SubscriptionsTest, RejectsBadInputs) {
  Rng rng(7);
  SubscriptionParams p;
  p.quality = 0.0;
  EXPECT_THROW(generateSubscriptions(p, {}, 1, 1, rng),
               std::invalid_argument);
  p.quality = 1.5;
  EXPECT_THROW(generateSubscriptions(p, {}, 1, 1, rng),
               std::invalid_argument);
  std::vector<RequestEvent> bad = {{0.0, 5, 0, true}};
  EXPECT_THROW(generateSubscriptions({}, bad, 2, 1, rng), std::out_of_range);
}

}  // namespace
}  // namespace pscd
