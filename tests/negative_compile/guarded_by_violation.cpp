// Negative-compile proof for the thread-safety layer: this translation
// unit reads and writes a PSCD_GUARDED_BY(mu_) field WITHOUT holding
// mu_, so under clang with -Werror=thread-safety it must fail to
// compile. The ctest entry building this target is marked WILL_FAIL:
// a successful build means the analysis has been silently disabled.
#include "pscd/util/mutex.h"
#include "pscd/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void unguardedWrite(int v) { value_ = v; }  // -Wthread-safety error
  int unguardedRead() const { return value_; }  // -Wthread-safety error

 private:
  mutable pscd::Mutex mu_;
  int value_ PSCD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.unguardedWrite(1);
  return c.unguardedRead();
}
