#include "pscd/util/check.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

namespace pscd {
namespace {

std::string messageOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckFailure& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckFailure";
  return {};
}

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(PSCD_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PSCD_CHECK(true) << "never rendered");
}

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(PSCD_CHECK(false), CheckFailure);
}

TEST(CheckTest, CheckFailureIsALogicError) {
  // Legacy call sites and tests catch std::logic_error; the new
  // exception must keep satisfying them.
  EXPECT_THROW(PSCD_CHECK(false), std::logic_error);
}

TEST(CheckTest, MessageCarriesConditionFileLineAndContext) {
  const std::string msg = messageOf([] {
    PSCD_CHECK(2 < 1) << "cache " << 7 << " over budget";
  });
  EXPECT_NE(msg.find("PSCD_CHECK(2 < 1) failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cache 7 over budget"), std::string::npos) << msg;
  EXPECT_NE(msg.find("check_test.cpp"), std::string::npos) << msg;

  try {
    PSCD_CHECK(false);
  } catch (const CheckFailure& e) {
    EXPECT_NE(e.file(), nullptr);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(CheckTest, ComparisonMacrosRenderBothOperands) {
  const std::string msg = messageOf([] {
    const int lhs = 3, rhs = 5;
    PSCD_CHECK_EQ(lhs, rhs) << "sizes diverged";
  });
  EXPECT_NE(msg.find("PSCD_CHECK_EQ(lhs, rhs) failed"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("(3 vs 5)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sizes diverged"), std::string::npos) << msg;
}

TEST(CheckTest, AllComparisonMacros) {
  EXPECT_NO_THROW(PSCD_CHECK_EQ(2, 2));
  EXPECT_NO_THROW(PSCD_CHECK_NE(2, 3));
  EXPECT_NO_THROW(PSCD_CHECK_LT(2, 3));
  EXPECT_NO_THROW(PSCD_CHECK_LE(2, 2));
  EXPECT_NO_THROW(PSCD_CHECK_GT(3, 2));
  EXPECT_NO_THROW(PSCD_CHECK_GE(3, 3));
  EXPECT_THROW(PSCD_CHECK_EQ(2, 3), CheckFailure);
  EXPECT_THROW(PSCD_CHECK_NE(2, 2), CheckFailure);
  EXPECT_THROW(PSCD_CHECK_LT(3, 3), CheckFailure);
  EXPECT_THROW(PSCD_CHECK_LE(4, 3), CheckFailure);
  EXPECT_THROW(PSCD_CHECK_GT(3, 3), CheckFailure);
  EXPECT_THROW(PSCD_CHECK_GE(2, 3), CheckFailure);
}

TEST(CheckTest, PassingCheckEvaluatesConditionOnce) {
  int calls = 0;
  const auto touched = [&calls] {
    ++calls;
    return true;
  };
  PSCD_CHECK(touched());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, WorksAsUnbracedIfBranch) {
  bool reachedElse = false;
  if (false)
    PSCD_CHECK(false) << "must not run";
  else
    reachedElse = true;
  EXPECT_TRUE(reachedElse);
}

TEST(DcheckTest, MatchesBuildMode) {
#if PSCD_DCHECK_IS_ON()
  EXPECT_THROW(PSCD_DCHECK(false), CheckFailure);
  EXPECT_THROW(PSCD_DCHECK_EQ(1, 2), CheckFailure);
#else
  // NDEBUG without PSCD_DCHECK_ALWAYS_ON: the checks compile out.
  EXPECT_NO_THROW(PSCD_DCHECK(false));
  EXPECT_NO_THROW(PSCD_DCHECK_EQ(1, 2));
#endif
  EXPECT_NO_THROW(PSCD_DCHECK(true));
  EXPECT_NO_THROW(PSCD_DCHECK_LE(1, 2) << "context still compiles");
}

TEST(DcheckTest, CompiledOutDchecksEvaluateNothing) {
  int calls = 0;
  const auto touched = [&calls] {
    ++calls;
    return true;
  };
  PSCD_DCHECK(touched());
#if PSCD_DCHECK_IS_ON()
  EXPECT_EQ(calls, 1);
#else
  EXPECT_EQ(calls, 0);
#endif
}

}  // namespace
}  // namespace pscd
