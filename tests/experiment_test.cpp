#include "pscd/sim/experiment.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

TEST(ExperimentTest, TraceNames) {
  EXPECT_EQ(traceName(TraceKind::kNews), "NEWS");
  EXPECT_EQ(traceName(TraceKind::kAlternative), "ALTERNATIVE");
}

TEST(ExperimentTest, TraceParamsCarryAlphaAndQuality) {
  const auto news = traceParams(TraceKind::kNews, 0.5);
  EXPECT_DOUBLE_EQ(news.request.zipfAlpha, 1.5);
  EXPECT_DOUBLE_EQ(news.subscription.quality, 0.5);
  const auto alt = traceParams(TraceKind::kAlternative, 1.0);
  EXPECT_DOUBLE_EQ(alt.request.zipfAlpha, 1.0);
}

TEST(ExperimentTest, PaperBetaRules) {
  // NEWS: beta = 2 for the GD*-based methods.
  EXPECT_DOUBLE_EQ(paperBeta(StrategyKind::kGDStar, TraceKind::kNews, 0.05),
                   2.0);
  EXPECT_DOUBLE_EQ(paperBeta(StrategyKind::kSG1, TraceKind::kNews, 0.01),
                   2.0);
  // ALTERNATIVE: SG2 always 0.5; others 1 at 1% and 2 at 5%/10%.
  EXPECT_DOUBLE_EQ(
      paperBeta(StrategyKind::kSG2, TraceKind::kAlternative, 0.05), 0.5);
  EXPECT_DOUBLE_EQ(
      paperBeta(StrategyKind::kGDStar, TraceKind::kAlternative, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(
      paperBeta(StrategyKind::kGDStar, TraceKind::kAlternative, 0.10), 2.0);
  // Strategies without a beta parameter.
  EXPECT_DOUBLE_EQ(paperBeta(StrategyKind::kSUB, TraceKind::kNews, 0.05),
                   1.0);
  EXPECT_DOUBLE_EQ(paperBeta(StrategyKind::kSR, TraceKind::kAlternative, 0.05),
                   1.0);
}

TEST(ExperimentTest, WorkloadsMemoized) {
  ExperimentContext ctx;
  const Workload& a = ctx.workload(TraceKind::kNews, 1.0);
  const Workload& b = ctx.workload(TraceKind::kNews, 1.0);
  EXPECT_EQ(&a, &b);
  const Workload& c = ctx.workload(TraceKind::kNews, 0.5);
  EXPECT_NE(&a, &c);
}

TEST(ExperimentTest, NetworkMemoized) {
  ExperimentContext ctx;
  EXPECT_EQ(&ctx.network(), &ctx.network());
  EXPECT_EQ(ctx.network().numProxies(), 100u);
}

}  // namespace
}  // namespace pscd
