#include "pscd/pubsub/routing.h"

#include <gtest/gtest.h>

#include "pscd/util/rng.h"

namespace pscd {
namespace {

Subscription sub(ProxyId proxy, std::vector<Predicate> preds) {
  Subscription s;
  s.proxy = proxy;
  s.conjuncts = std::move(preds);
  return s;
}

ContentAttributes attrs(PageId page, std::uint32_t category = 0,
                        std::vector<std::uint32_t> keywords = {}) {
  ContentAttributes a;
  a.page = page;
  a.category = category;
  a.keywords = std::move(keywords);
  return a;
}

const Predicate kCat1{Predicate::Kind::kCategoryEq, 1};
const Predicate kKw7{Predicate::Kind::kKeywordContains, 7};

TEST(BrokerTreeTest, BalancedShape) {
  const auto t = BrokerTree::balanced(7, 2);
  EXPECT_EQ(t.numBrokers(), 7u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_EQ(t.parent(5), 2u);
  EXPECT_FALSE(t.isLeaf(0));
  EXPECT_TRUE(t.isLeaf(6));
}

TEST(BrokerTreeTest, RejectsBadTopology) {
  EXPECT_THROW(BrokerTree({}), std::invalid_argument);
  EXPECT_THROW(BrokerTree({0, 2, 1}), std::invalid_argument);  // 1's parent 2
  EXPECT_THROW(BrokerTree::balanced(0, 2), std::invalid_argument);
  EXPECT_THROW(BrokerTree::balanced(3, 0), std::invalid_argument);
}

TEST(BrokerTreeTest, AttachGuards) {
  auto t = BrokerTree::balanced(3, 2);
  t.attachProxy(0, 1);
  EXPECT_THROW(t.attachProxy(0, 2), std::logic_error);  // twice
  EXPECT_THROW(t.attachProxy(1, 9), std::out_of_range);
  EXPECT_THROW(t.subscribe(sub(5, {kCat1})), std::logic_error);  // unattached
}

TEST(BrokerTreeTest, DeliversToSubscribedProxy) {
  auto t = BrokerTree::balanced(7, 2);
  t.attachProxy(3, 5);
  t.subscribe(sub(3, {kCat1}));
  const auto out = t.publish(attrs(0, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Notification{3, 1}));
  EXPECT_TRUE(t.publish(attrs(0, 2)).empty());
}

TEST(BrokerTreeTest, EventMessagesFollowMatchedPathOnly) {
  auto t = BrokerTree::balanced(7, 2);  // root 0; 1,2; leaves 3..6
  t.attachProxy(0, 3);                  // path 0 -> 1 -> 3
  t.subscribe(sub(0, {kCat1}));
  t.publish(attrs(0, 1));
  EXPECT_EQ(t.eventMessages(), 2u);  // 0->1, 1->3
  t.publish(attrs(0, 2));            // no match: no link used
  EXPECT_EQ(t.eventMessages(), 2u);
  EXPECT_EQ(t.floodEventMessages(), 12u);  // 2 publishes x 6 links
}

TEST(BrokerTreeTest, ControlMessagesCountAdvertisements) {
  auto t = BrokerTree::balanced(7, 2);
  t.attachProxy(0, 5);  // path 5 -> 2 -> 0: two advertisement hops
  t.subscribe(sub(0, {kCat1}));
  EXPECT_EQ(t.controlMessages(), 2u);
}

TEST(BrokerTreeTest, CoveringPrunesDuplicateAdvertisements) {
  auto t = BrokerTree::balanced(7, 2, /*useCovering=*/true);
  t.attachProxy(0, 5);
  t.attachProxy(1, 5);
  t.subscribe(sub(0, {kCat1}));
  t.subscribe(sub(1, {kCat1}));  // identical: absorbed at broker 5
  EXPECT_EQ(t.controlMessages(), 2u);
  // Both proxies are still notified.
  const auto out = t.publish(attrs(0, 1));
  ASSERT_EQ(out.size(), 2u);
}

TEST(BrokerTreeTest, CoveringPrunesNarrowerSubscriptions) {
  auto t = BrokerTree::balanced(3, 2, true);
  t.attachProxy(0, 1);
  t.subscribe(sub(0, {kCat1}));        // advertised: 1 hop
  t.subscribe(sub(0, {kCat1, kKw7}));  // covered by the first
  EXPECT_EQ(t.controlMessages(), 1u);
  // Narrower subscription still delivered correctly.
  const auto out = t.publish(attrs(0, 1, {7}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].matchCount, 2u);
  // An event matching only the broad one counts once.
  EXPECT_EQ(t.publish(attrs(0, 1)).at(0).matchCount, 1u);
}

TEST(BrokerTreeTest, WithoutCoveringEveryAdvertisementTravels) {
  auto t = BrokerTree::balanced(3, 2, /*useCovering=*/false);
  t.attachProxy(0, 1);
  t.subscribe(sub(0, {kCat1}));
  t.subscribe(sub(0, {kCat1}));
  EXPECT_EQ(t.controlMessages(), 2u);
}

TEST(BrokerTreeTest, RootAttachedProxyWorks) {
  auto t = BrokerTree::balanced(3, 2);
  t.attachProxy(7, 0);
  t.subscribe(sub(7, {kCat1}));
  EXPECT_EQ(t.controlMessages(), 0u);  // already at the root
  EXPECT_EQ(t.publish(attrs(0, 1)).at(0).proxy, 7u);
}

TEST(BrokerTreeTest, EquivalentToCentralizedBroker) {
  // Property: for random subscription sets and events, the distributed
  // tree (with covering) produces exactly the per-proxy counts of the
  // centralized Broker.
  Rng rng(29);
  for (const bool covering : {true, false}) {
    auto tree = BrokerTree::balanced(15, 2, covering);
    Broker flat(10);
    for (ProxyId p = 0; p < 10; ++p) {
      tree.attachProxy(p, static_cast<BrokerId>(rng.uniformInt(
                              std::uint64_t{15})));
    }
    for (int i = 0; i < 250; ++i) {
      Subscription s;
      s.proxy = static_cast<ProxyId>(rng.uniformInt(std::uint64_t{10}));
      const int n = 1 + static_cast<int>(rng.uniformInt(std::uint64_t{2}));
      for (int k = 0; k < n; ++k) {
        Predicate p;
        const auto kindPick = rng.uniformInt(std::uint64_t{3});
        p.kind = kindPick == 0   ? Predicate::Kind::kPageIdEq
                 : kindPick == 1 ? Predicate::Kind::kCategoryEq
                                 : Predicate::Kind::kKeywordContains;
        p.value = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{6}));
        s.conjuncts.push_back(p);
      }
      tree.subscribe(s);
      flat.subscribe(s);
    }
    for (int trial = 0; trial < 150; ++trial) {
      ContentAttributes e;
      e.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{6}));
      e.category =
          static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{6}));
      if (rng.bernoulli(0.6)) {
        e.keywords.push_back(
            static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{6})));
      }
      const auto fromTree = tree.publish(e);
      const auto fromFlat = flat.publish(e);
      ASSERT_EQ(fromTree.size(), fromFlat.size()) << "covering=" << covering;
      for (std::size_t i = 0; i < fromTree.size(); ++i) {
        EXPECT_EQ(fromTree[i], fromFlat[i]) << "covering=" << covering;
      }
    }
  }
}

TEST(BrokerTreeTest, CoveringReducesControlTraffic) {
  Rng rng(31);
  std::vector<Subscription> subs;
  for (int i = 0; i < 300; ++i) {
    Subscription s;
    s.proxy = static_cast<ProxyId>(rng.uniformInt(std::uint64_t{8}));
    Predicate p;
    p.kind = Predicate::Kind::kCategoryEq;
    p.value = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{4}));
    s.conjuncts.push_back(p);
    subs.push_back(s);
  }
  auto with = BrokerTree::balanced(15, 2, true);
  auto without = BrokerTree::balanced(15, 2, false);
  for (ProxyId p = 0; p < 8; ++p) {
    with.attachProxy(p, 7 + p);
    without.attachProxy(p, 7 + p);
  }
  for (const auto& s : subs) {
    with.subscribe(s);
    without.subscribe(s);
  }
  EXPECT_LT(with.controlMessages(), without.controlMessages() / 4);
}

}  // namespace
}  // namespace pscd
