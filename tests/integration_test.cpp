// End-to-end integration tests on a scaled-down news workload: the
// paper's headline qualitative results must hold, and the simulator's
// stream merging must agree with a hand-driven engine replay.
#include <gtest/gtest.h>

#include "pscd/core/engine.h"
#include "pscd/sim/experiment.h"
#include "pscd/sim/simulator.h"

namespace pscd {
namespace {

WorkloadParams miniParams(double sq = 1.0) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 600;
  p.publishing.numUpdatedPages = 240;
  p.publishing.maxVersionsPerPage = 40;
  p.request.totalRequests = 20000;
  p.request.numProxies = 12;
  p.request.minServerPool = 4;
  p.subscription.quality = sq;
  p.seed = 1234;
  return p;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : workload_(buildWorkload(miniParams())),
        rng_(31),
        network_(NetworkParams{.numProxies = 12, .numTransitNodes = 6},
                 rng_) {}

  SimMetrics run(StrategyKind kind, double cap = 0.05) {
    SimConfig c;
    c.strategy = kind;
    c.beta = 2.0;
    c.capacityFraction = cap;
    return Simulator(workload_, network_, c).run();
  }

  Workload workload_;
  Rng rng_;
  Network network_;
};

TEST_F(IntegrationTest, PushingBeatsPureCachingAtModerateCapacity) {
  // The paper's central result (fig. 4): with perfect subscriptions the
  // push+access schemes beat the access-only baseline.
  const double gd = run(StrategyKind::kGDStar).hitRatio();
  for (const StrategyKind kind :
       {StrategyKind::kSG1, StrategyKind::kSG2, StrategyKind::kSR,
        StrategyKind::kDM, StrategyKind::kDCLAP}) {
    EXPECT_GT(run(kind).hitRatio(), gd) << strategyName(kind);
  }
}

TEST_F(IntegrationTest, Sg2BeatsSubWhichBeatsNothingOnMisses) {
  const double sub = run(StrategyKind::kSUB).hitRatio();
  const double sg2 = run(StrategyKind::kSG2).hitRatio();
  EXPECT_GT(sg2, sub);
}

TEST_F(IntegrationTest, GdStarPaysStaleMisses) {
  const auto gd = run(StrategyKind::kGDStar);
  const auto sg2 = run(StrategyKind::kSG2);
  EXPECT_GT(gd.staleMisses(), 0u);
  // Pushing keeps subscribed proxies fresh: far fewer stale misses.
  EXPECT_LT(sg2.staleMisses(), gd.staleMisses() / 2);
}

TEST_F(IntegrationTest, TrafficAccountingConsistent) {
  const auto m = run(StrategyKind::kSG2);
  EXPECT_EQ(m.traffic().fetchPages, m.requests() - m.hits());
  EXPECT_GT(m.traffic().pushBytes, 0u);
  // Fetch bytes can never exceed total requested bytes.
  Bytes totalRequested = 0;
  for (const auto& r : workload_.requests) {
    totalRequested += workload_.pages[r.page].size;
  }
  EXPECT_LE(m.traffic().fetchBytes, totalRequested);
}

TEST_F(IntegrationTest, SimulatorMatchesManualEngineReplay) {
  // Drive the engine by hand over the merged streams and compare with
  // the Simulator run — validates the event merge and accounting.
  SimConfig c;
  c.strategy = StrategyKind::kSG2;
  c.beta = 2.0;
  c.capacityFraction = 0.05;
  Simulator sim(workload_, network_, c);
  const auto fromSim = sim.run();

  EngineConfig ec;
  ec.strategy = StrategyKind::kSG2;
  ec.beta = 2.0;
  for (ProxyId p = 0; p < workload_.numProxies(); ++p) {
    ec.proxyCapacities.push_back(sim.proxyCapacity(p));
  }
  ContentDistributionEngine engine(network_, std::move(ec));
  for (PageId page = 0; page < workload_.numPages(); ++page) {
    for (const auto& n : workload_.subscriptions(page)) {
      engine.broker().subscribeAggregated(n.proxy, page, n.matchCount);
    }
  }
  std::uint64_t hits = 0, pushes = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < workload_.publishes.size() || ri < workload_.requests.size()) {
    const bool takePublish =
        pi < workload_.publishes.size() &&
        (ri >= workload_.requests.size() ||
         workload_.publishes[pi].time <= workload_.requests[ri].time);
    if (takePublish) {
      pushes += engine.publish(workload_.publishes[pi++]).pagesTransferred;
    } else {
      const auto& r = workload_.requests[ri++];
      hits += engine.request(r.proxy, r.page, r.time).hit;
    }
  }
  EXPECT_EQ(hits, fromSim.hits());
  EXPECT_EQ(pushes, fromSim.traffic().pushPages);
}

TEST_F(IntegrationTest, LowerSubscriptionQualityNeverHelpsSr) {
  const Workload degraded = buildWorkload(miniParams(0.25));
  SimConfig c;
  c.strategy = StrategyKind::kSR;
  c.capacityFraction = 0.05;
  const auto perfect = Simulator(workload_, network_, c).run();
  const auto noisy = Simulator(degraded, network_, c).run();
  EXPECT_LT(noisy.hitRatio(), perfect.hitRatio());
}

TEST_F(IntegrationTest, MixedTrafficExtensionRuns) {
  // Future-work scenario: 30% of requests are not notification-driven.
  WorkloadParams p = miniParams();
  p.request.notificationDrivenFraction = 0.7;
  const Workload mixed = buildWorkload(p);
  EXPECT_LT(mixed.totalSubscriptions(), mixed.requests.size());
  SimConfig c;
  c.strategy = StrategyKind::kSG2;
  c.capacityFraction = 0.05;
  const auto m = Simulator(mixed, network_, c).run();
  EXPECT_GT(m.hitRatio(), 0.0);
}

TEST_F(IntegrationTest, SubscriptionChurnDegradesGracefully) {
  WorkloadParams p = miniParams();
  p.subscription.churnPerDay = 0.5;
  const Workload churned = buildWorkload(p);
  EXPECT_FALSE(churned.churn.empty());
  EXPECT_NO_THROW(churned.validate());
  SimConfig c;
  c.strategy = StrategyKind::kSR;
  c.capacityFraction = 0.05;
  const double stable = run(StrategyKind::kSR).hitRatio();
  const double withChurn = Simulator(churned, network_, c).run().hitRatio();
  // Churn corrupts the subscription signal for SR...
  EXPECT_LT(withChurn, stable);
  // ...but GD* is indifferent to it.
  SimConfig g;
  g.strategy = StrategyKind::kGDStar;
  g.beta = 2.0;
  g.capacityFraction = 0.05;
  const double gdStable = run(StrategyKind::kGDStar).hitRatio();
  const double gdChurn = Simulator(churned, network_, g).run().hitRatio();
  EXPECT_NEAR(gdChurn, gdStable, 0.02);
}

TEST_F(IntegrationTest, PerProxyRatiosAverageToGlobal) {
  const auto m = run(StrategyKind::kGDStar);
  // Weighted combination of per-proxy ratios must reproduce H.
  double hits = 0.0;
  std::uint64_t reqs = 0;
  std::map<ProxyId, std::uint64_t> perProxy;
  for (const auto& r : workload_.requests) ++perProxy[r.proxy];
  for (const auto& [proxy, n] : perProxy) {
    hits += m.proxyHitRatio(proxy) * static_cast<double>(n);
    reqs += n;
  }
  EXPECT_EQ(reqs, m.requests());
  EXPECT_NEAR(hits / static_cast<double>(reqs), m.hitRatio(), 1e-9);
}

}  // namespace
}  // namespace pscd
