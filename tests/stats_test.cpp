#include "pscd/util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace pscd {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, HandlesNegatives) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(-100.0);  // clamps to first bin
  h.add(999.0);   // clamps to last bin
  h.add(9.0, 2.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(HistogramTest, CdfInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(h.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(11.0), 1.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HourlySeriesTest, BucketsByHour) {
  HourlySeries s(24);
  s.add(0.0, 1.0);
  s.add(3599.0, 1.0);
  s.add(3600.0, 5.0);
  EXPECT_DOUBLE_EQ(s.numerator(0), 2.0);
  EXPECT_DOUBLE_EQ(s.numerator(1), 5.0);
  EXPECT_DOUBLE_EQ(s.denominator(0), 2.0);
}

TEST(HourlySeriesTest, RatioHandlesEmptyHours) {
  HourlySeries s(3);
  s.add(3700.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(s.ratio(0), 0.0);
  EXPECT_DOUBLE_EQ(s.ratio(1), 0.75);
}

TEST(HourlySeriesTest, ClampsOutOfRange) {
  HourlySeries s(2);
  s.add(-5.0, 1.0);
  s.add(1e9, 1.0);
  EXPECT_DOUBLE_EQ(s.numerator(0), 1.0);
  EXPECT_DOUBLE_EQ(s.numerator(1), 1.0);
}

TEST(HourlySeriesTest, RejectsZeroHours) {
  EXPECT_THROW(HourlySeries(0), std::invalid_argument);
}

TEST(QuantileTest, Median) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v = {2.0, 8.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 8.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, RejectsEmpty) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
