// Tests of the subscription-aware members of the GD* family: SG1 (f =
// s + a, eq. 3), SG2 (f = max(s - a, 0), eq. 4) and SR (eq. 5, no
// inflation), including the value-based admission of section 3.3 and
// persistent access counting.
#include "pscd/cache/gds_family.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

PushContext push(PageId page, Bytes size, std::uint32_t subs,
                 Version version = 0, SimTime now = 0.0) {
  return PushContext{page, version, size, subs, now};
}

RequestContext req(PageId page, Bytes size, Version latest = 0,
                   std::uint32_t subs = 0, SimTime now = 0.0) {
  return RequestContext{page, latest, size, subs, now};
}

TEST(SgFamilyTest, AllPushCapable) {
  EXPECT_TRUE(GdsFamilyStrategy(100, 1.0, sg1Config(1.0)).pushCapable());
  EXPECT_TRUE(GdsFamilyStrategy(100, 1.0, sg2Config(1.0)).pushCapable());
  EXPECT_TRUE(GdsFamilyStrategy(100, 1.0, srConfig()).pushCapable());
}

TEST(SgFamilyTest, PushStoresMatchedPage) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  EXPECT_TRUE(s.onPush(push(1, 50, 10)).stored);
  EXPECT_TRUE(s.cache().contains(1));
  EXPECT_EQ(s.cache().find(1)->subCount, 10u);
}

TEST(SgFamilyTest, PushRefusedWhenCandidatesTooSmall) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  EXPECT_TRUE(s.onPush(push(1, 60, 100)).stored);  // V = 100/60
  EXPECT_TRUE(s.onPush(push(2, 40, 100)).stored);  // V = 100/40
  // Page 3 (s=1, V=1/50) is below both residents: refused.
  EXPECT_FALSE(s.onPush(push(3, 50, 1)).stored);
  EXPECT_TRUE(s.cache().contains(1));
  EXPECT_TRUE(s.cache().contains(2));
}

TEST(SgFamilyTest, PushEvictsStrictlyLowerValuedPages) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  s.onPush(push(1, 60, 1));    // V = 1/60
  s.onPush(push(2, 40, 2));    // V = 2/40
  EXPECT_TRUE(s.onPush(push(3, 80, 50)).stored);  // V = 50/80 beats both
  EXPECT_FALSE(s.cache().contains(1));
  EXPECT_TRUE(s.cache().contains(3));
}

TEST(SgFamilyTest, MissWithLowValueNotCached) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  s.onPush(push(1, 60, 100));
  s.onPush(push(2, 40, 100));
  // Unsubscribed page: f = max(0-1, 0) = 0; cannot displace anything.
  const auto out = s.onRequest(req(3, 30, 0, 0));
  EXPECT_FALSE(out.hit);
  EXPECT_FALSE(out.storedAfterMiss);
}

TEST(Sg1Test, FrequencyIsSubPlusAccess) {
  GdsFamilyStrategy s(1000, 1.0, sg1Config(1.0));
  s.onPush(push(1, 100, 5));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.05);  // (5+0)/100
  s.onRequest(req(1, 100, 0, 5));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.06);  // (5+1)/100
}

TEST(Sg2Test, FrequencyIsSubMinusAccess) {
  GdsFamilyStrategy s(1000, 1.0, sg2Config(1.0));
  s.onPush(push(1, 100, 3));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.03);  // (3-0)/100
  s.onRequest(req(1, 100, 0, 3));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.02);  // (3-1)/100
}

TEST(Sg2Test, FrequencyClampedAtZero) {
  GdsFamilyStrategy s(1000, 1.0, sg2Config(1.0));
  s.onPush(push(1, 100, 1));
  s.onRequest(req(1, 100, 0, 1));
  s.onRequest(req(1, 100, 0, 1));  // a = 2 > s = 1
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.0);  // L still 0
}

TEST(Sg2Test, PersistentAccessCountsSurviveEviction) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  s.onPush(push(1, 100, 10));
  for (int i = 0; i < 4; ++i) s.onRequest(req(1, 100, 0, 10));
  // Force page 1 out, then push it back: a must still be 4 (the proxy
  // remembers its users' accesses), so f = 10 - 4.
  s.onPush(push(2, 100, 1000));
  EXPECT_FALSE(s.cache().contains(1));
  s.onPush(push(2, 1, 1000));  // shrink page 2 so page 1 fits again
  EXPECT_TRUE(s.onPush(push(1, 99, 10)).stored);
  // f = s - a = 10 - 4 thanks to the persistent counter; the stored
  // value also carries the inflation L accumulated by the eviction.
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, s.inflation() + 6.0 / 99.0);
  EXPECT_GT(s.inflation(), 0.0);
}

TEST(Sg2Test, DrainedPageBecomesEvictionCandidate) {
  GdsFamilyStrategy s(100, 1.0, sg2Config(1.0));
  s.onPush(push(1, 60, 1));
  s.onRequest(req(1, 60, 0, 1));  // drained: f -> 0
  // A new push with any positive value can now displace page 1.
  EXPECT_TRUE(s.onPush(push(2, 80, 1)).stored);
  EXPECT_FALSE(s.cache().contains(1));
}

TEST(SrTest, NoInflation) {
  GdsFamilyStrategy s(100, 1.0, srConfig());
  s.onRequest(req(1, 100, 0, 0));  // f=0 -> V=0, always-admit? no:
  // SR uses value-based admission; V=0 admits only into free space.
  EXPECT_TRUE(s.cache().contains(1));  // cache was empty -> free space
  s.onPush(push(2, 100, 50));          // evicts page 1 (V=0 < 0.5)
  EXPECT_FALSE(s.cache().contains(1));
  // L would now be 0 + ... but SR has no inflation: values stay pure.
  EXPECT_DOUBLE_EQ(s.cache().find(2)->value, 0.5);
}

TEST(SrTest, VersionPushRefreshesInPlace) {
  GdsFamilyStrategy s(1000, 1.0, srConfig());
  s.onPush(push(1, 100, 5, 0));
  s.onPush(push(1, 120, 5, 3));
  EXPECT_EQ(s.cache().find(1)->version, 3u);
  EXPECT_EQ(s.cache().find(1)->size, 120u);
  EXPECT_EQ(s.usedBytes(), 120u);
}

TEST(SrTest, StaleCopyRefetchedOnRequest) {
  GdsFamilyStrategy s(1000, 1.0, srConfig());
  s.onPush(push(1, 100, 5, 0));
  const auto out = s.onRequest(req(1, 100, 2, 5));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_EQ(s.cache().find(1)->version, 2u);
}

TEST(SgFamilyTest, NamesMatchPaper) {
  EXPECT_EQ(GdsFamilyStrategy(10, 1.0, sg1Config(2.0)).name(), "SG1");
  EXPECT_EQ(GdsFamilyStrategy(10, 1.0, sg2Config(2.0)).name(), "SG2");
  EXPECT_EQ(GdsFamilyStrategy(10, 1.0, srConfig()).name(), "SR");
  EXPECT_EQ(GdsFamilyStrategy(10, 1.0, gdStarConfig(2.0)).name(), "GD*");
}

TEST(SgFamilyTest, ChurnKeepsInvariants) {
  GdsFamilyStrategy s(300, 2.0, sg2Config(2.0));
  for (int i = 0; i < 300; ++i) {
    const PageId p = i % 13;
    if (i % 3 == 0) {
      s.onPush(push(p, 20 + (i % 5) * 30, (i % 7) + 1, i % 4));
    } else {
      s.onRequest(req(p, 20 + (i % 5) * 30, i % 4, (i % 7) + 1));
    }
    s.checkInvariants();
  }
}

}  // namespace
}  // namespace pscd
