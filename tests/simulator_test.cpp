#include "pscd/sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pscd {
namespace {

WorkloadParams tinyParams(std::uint64_t seed = 3) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 250;
  p.publishing.numUpdatedPages = 100;
  p.publishing.maxVersionsPerPage = 15;
  p.request.totalRequests = 6000;
  p.request.numProxies = 8;
  p.request.minServerPool = 2;
  p.seed = seed;
  return p;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : workload_(buildWorkload(tinyParams())),
        rng_(9),
        network_(NetworkParams{.numProxies = 8, .numTransitNodes = 4},
                 rng_) {}

  SimMetrics run(StrategyKind kind, double cap = 0.05,
                 PushScheme scheme = PushScheme::kAlwaysPushing,
                 bool hourly = false) {
    SimConfig c;
    c.strategy = kind;
    c.beta = 2.0;
    c.capacityFraction = cap;
    c.pushScheme = scheme;
    c.collectHourly = hourly;
    return Simulator(workload_, network_, c).run();
  }

  Workload workload_;
  Rng rng_;
  Network network_;
};

TEST_F(SimulatorTest, ProcessesWholeTrace) {
  const auto m = run(StrategyKind::kGDStar);
  EXPECT_EQ(m.requests(), workload_.requests.size());
  EXPECT_GT(m.hitRatio(), 0.0);
  EXPECT_LT(m.hitRatio(), 1.0);
}

TEST_F(SimulatorTest, RepeatableRuns) {
  const auto a = run(StrategyKind::kSG2);
  const auto b = run(StrategyKind::kSG2);
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.traffic().pushPages, b.traffic().pushPages);
}

TEST_F(SimulatorTest, CapacityMonotonicity) {
  const double h1 = run(StrategyKind::kGDStar, 0.01).hitRatio();
  const double h10 = run(StrategyKind::kGDStar, 0.20).hitRatio();
  EXPECT_GE(h10, h1);
}

TEST_F(SimulatorTest, ProxyCapacityFollowsFraction) {
  SimConfig c;
  c.capacityFraction = 0.05;
  Simulator sim(workload_, network_, c);
  for (ProxyId p = 0; p < workload_.numProxies(); ++p) {
    const auto expect = static_cast<Bytes>(
        std::llround(0.05 *
                     static_cast<double>(workload_.uniqueBytesRequested[p])));
    EXPECT_EQ(sim.proxyCapacity(p), std::max<Bytes>(expect, 1));
  }
}

TEST_F(SimulatorTest, PushStrategiesGeneratePushTraffic) {
  EXPECT_EQ(run(StrategyKind::kGDStar).traffic().pushPages, 0u);
  EXPECT_GT(run(StrategyKind::kSG2).traffic().pushPages, 0u);
}

TEST_F(SimulatorTest, WhenNecessaryNeverExceedsAlwaysPushing) {
  const auto always =
      run(StrategyKind::kSG2, 0.05, PushScheme::kAlwaysPushing);
  const auto necessary =
      run(StrategyKind::kSG2, 0.05, PushScheme::kPushingWhenNecessary);
  EXPECT_LE(necessary.traffic().pushPages, always.traffic().pushPages);
  // The hit ratio is identical: the scheme changes traffic accounting,
  // not placement decisions.
  EXPECT_EQ(necessary.hits(), always.hits());
}

TEST_F(SimulatorTest, HourlySeriesCoverHorizon) {
  const auto m = run(StrategyKind::kGDStar, 0.05,
                     PushScheme::kAlwaysPushing, true);
  EXPECT_EQ(m.hours(), 168u);
  double total = 0.0;
  for (std::size_t h = 0; h < m.hours(); ++h) {
    total += m.hourlyTrafficPages(h);
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(m.traffic().totalPages()));
}

TEST_F(SimulatorTest, FetchTrafficMatchesMisses) {
  const auto m = run(StrategyKind::kGDStar);
  EXPECT_EQ(m.traffic().fetchPages, m.requests() - m.hits());
}

TEST_F(SimulatorTest, InvariantCheckingPasses) {
  for (const StrategyKind kind : kPaperStrategies) {
    SimConfig c;
    c.strategy = kind;
    c.beta = 2.0;
    c.capacityFraction = 0.03;
    c.invariantCheckInterval = 997;
    EXPECT_NO_THROW(Simulator(workload_, network_, c).run())
        << strategyName(kind);
  }
}

TEST_F(SimulatorTest, ResponseTimeMirrorsHitRatio) {
  const auto gd = run(StrategyKind::kGDStar);
  const auto sg2 = run(StrategyKind::kSG2);
  // Higher hit ratio => lower mean response time under the latency model.
  ASSERT_GT(sg2.hitRatio(), gd.hitRatio());
  EXPECT_LT(sg2.meanResponseTime(), gd.meanResponseTime());
  // Bounds: between pure-local and local + max distance * unit.
  EXPECT_GE(gd.meanResponseTime(), 5.0);
}

TEST_F(SimulatorTest, PerfectCacheGivesLocalLatency) {
  // With a capacity fraction of 1.0 and pushes, SG2 approaches the
  // local-only latency floor.
  SimConfig c;
  c.strategy = StrategyKind::kSG2;
  c.beta = 2.0;
  c.capacityFraction = 1.0;
  const auto m = Simulator(workload_, network_, c).run();
  EXPECT_GT(m.hitRatio(), 0.9);
  EXPECT_LT(m.meanResponseTime(), 5.0 + 0.2 * 100.0);
}

TEST_F(SimulatorTest, MismatchedProxyCountRejected) {
  Rng rng(1);
  const Network other(NetworkParams{.numProxies = 3}, rng);
  SimConfig c;
  EXPECT_THROW(Simulator(workload_, other, c), std::invalid_argument);
}

TEST_F(SimulatorTest, BadCapacityFractionRejected) {
  SimConfig c;
  c.capacityFraction = 0.0;
  EXPECT_THROW(Simulator(workload_, network_, c), std::invalid_argument);
  c.capacityFraction = 1.5;
  EXPECT_THROW(Simulator(workload_, network_, c), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
