// TimerWheel unit tests: slot math, wrap-around, past-deadline
// promotion, and the nextWake bound the daemon's epoll timeout uses.
#include "pscd/net/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

namespace pscd::net {
namespace {

TEST(TimerWheel, StartsEmpty) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.nextWakeSeconds(0.0),
            std::numeric_limits<double>::infinity());
  std::vector<int> out;
  wheel.collectExpired(100.0, &out);  // advancing an empty wheel is a no-op
  EXPECT_TRUE(out.empty());
}

TEST(TimerWheel, SchedulesAndCollectsInDeadlineOrder) {
  TimerWheel wheel(0.01, 256);
  wheel.schedule(3, 0.05);
  wheel.schedule(4, 0.10);
  EXPECT_EQ(wheel.size(), 2u);

  std::vector<int> out;
  wheel.collectExpired(0.06, &out);
  EXPECT_EQ(out, std::vector<int>{3});
  EXPECT_EQ(wheel.size(), 1u);

  wheel.collectExpired(0.2, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], 4);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PastDeadlineFiresOnNextCollect) {
  TimerWheel wheel(0.01, 256);
  std::vector<int> out;
  wheel.collectExpired(1.0, &out);  // move the cursor well forward
  // A deadline at/behind the cursor must land in the *next* tick, not a
  // full revolution away.
  wheel.schedule(7, 0.5);
  EXPECT_LE(wheel.nextWakeSeconds(1.0), 0.01 + 1e-12);
  wheel.collectExpired(1.02, &out);
  EXPECT_EQ(out, std::vector<int>{7});
}

TEST(TimerWheel, BeyondHorizonDeadlineWrapsAndFiresEarly) {
  // Horizon = 0.01 * 16 = 0.16s; a 1.0s deadline wraps. The contract is
  // that it fires *early* (at most once per revolution), and the caller
  // re-validates against the authoritative deadline and re-schedules.
  TimerWheel wheel(0.01, 16);
  wheel.schedule(9, 1.0);
  std::vector<int> out;
  wheel.collectExpired(0.2, &out);
  EXPECT_EQ(out, std::vector<int>{9});  // early: 0.2 < 1.0
  // The daemon's revalidation path: deadline not reached, re-schedule.
  wheel.schedule(9, 1.0);
  out.clear();
  wheel.collectExpired(1.05, &out);
  EXPECT_EQ(out, std::vector<int>{9});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, NextWakeBoundsTheNearestDeadline) {
  TimerWheel wheel(0.01, 256);
  wheel.schedule(1, 0.50);
  wheel.schedule(2, 0.90);
  const double wake = wheel.nextWakeSeconds(0.1);
  // Never later than one tick after the nearest real deadline, never
  // negative.
  EXPECT_GE(wake, 0.0);
  EXPECT_LE(0.1 + wake, 0.50 + 0.01 + 1e-12);
  EXPECT_GE(0.1 + wake, 0.50 - 0.01 - 1e-12);

  // Once now has passed a nonempty slot boundary, the wake is 0 (fire
  // immediately), not negative.
  EXPECT_EQ(wheel.nextWakeSeconds(0.6), 0.0);
}

TEST(TimerWheel, DuplicateEntriesForOneFdAllSurface) {
  // No cancel(): re-arming an fd leaves the older entry in place, and
  // both come back from collectExpired (revalidation collapses them).
  TimerWheel wheel(0.01, 64);
  wheel.schedule(5, 0.03);
  wheel.schedule(5, 0.07);
  std::vector<int> out;
  wheel.collectExpired(0.1, &out);
  EXPECT_EQ(out, (std::vector<int>{5, 5}));
}

TEST(TimerWheel, CollectIsIncremental) {
  // Collecting in several small steps sees exactly what one big step
  // would: entries fire once, nothing is lost between calls.
  TimerWheel stepped(0.01, 32);
  TimerWheel oneshot(0.01, 32);
  for (int fd = 0; fd < 8; ++fd) {
    stepped.schedule(fd, 0.02 + fd * 0.013);
    oneshot.schedule(fd, 0.02 + fd * 0.013);
  }
  std::vector<int> steppedOut;
  for (double now = 0.0; now <= 0.2; now += 0.017) {
    stepped.collectExpired(now, &steppedOut);
  }
  std::vector<int> oneshotOut;
  oneshot.collectExpired(0.2, &oneshotOut);
  std::sort(steppedOut.begin(), steppedOut.end());
  std::sort(oneshotOut.begin(), oneshotOut.end());
  EXPECT_EQ(steppedOut, oneshotOut);
  EXPECT_EQ(steppedOut.size(), 8u);
}

}  // namespace
}  // namespace pscd::net
