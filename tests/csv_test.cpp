#include "pscd/util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pscd {
namespace {

TEST(CsvEscapeTest, PlainValueUnchanged) {
  EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscapeTest, QuotesValueWithSeparator) {
  EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, EscapesEmbeddedQuotes) {
  EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, QuotesNewlines) {
  EXPECT_EQ(csvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvEscapeTest, RespectsCustomSeparator) {
  EXPECT_EQ(csvEscape("a,b", ';'), "a,b");
  EXPECT_EQ(csvEscape("a;b", ';'), "\"a;b\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "y"});
  w.field(std::uint64_t{1}).field("two");
  w.endRow();
  EXPECT_EQ(os.str(), "x,y\n1,two\n");
  EXPECT_EQ(w.rowsWritten(), 1u);
}

TEST(CsvWriterTest, FormatsDoubles) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(1.5).field(-2.25);
  w.endRow();
  EXPECT_EQ(os.str(), "1.5,-2.25\n");
}

TEST(CsvWriterTest, SignedIntegers) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(std::int64_t{-42});
  w.endRow();
  EXPECT_EQ(os.str(), "-42\n");
}

TEST(CsvWriterTest, HeaderAfterRowThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("a");
  w.endRow();
  EXPECT_THROW(w.header({"x"}), std::logic_error);
}

TEST(CsvWriterTest, CustomSeparator) {
  std::ostringstream os;
  CsvWriter w(os, '\t');
  w.field("a").field("b");
  w.endRow();
  EXPECT_EQ(os.str(), "a\tb\n");
}

}  // namespace
}  // namespace pscd
