#include "pscd/topology/link_state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {
namespace {

Network randomNetwork(std::uint64_t seed = 9) {
  Rng rng(seed);
  return Network(NetworkParams{.numProxies = 12, .numTransitNodes = 6}, rng);
}

/// Diamond overlay: publisher 0, proxies on 1 and 2, cheap path
/// 0-1-2 (1 + 1) and expensive detour 0-3-2 (5 + 5).
Network diamondNetwork() {
  Graph g(4);
  g.addEdge(0, 1, 1.0);
  g.addEdge(1, 2, 1.0);
  g.addEdge(0, 3, 5.0);
  g.addEdge(3, 2, 5.0);
  return Network(std::move(g), /*publisherNode=*/0, /*proxyNodes=*/{1, 2});
}

TEST(NetworkReachable, ConnectedGraphReachesEveryProxy) {
  const Network n = randomNetwork();
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    EXPECT_TRUE(n.reachable(p));
    EXPECT_TRUE(std::isfinite(n.fetchCost(p)));
  }
  EXPECT_NO_THROW(n.checkInvariants());
}

TEST(NetworkReachable, DisconnectedProxyGetsInfiniteCost) {
  Graph g(3);
  g.addEdge(0, 1, 2.0);  // node 2 is isolated
  const Network n(std::move(g), 0, {1, 2});
  EXPECT_TRUE(n.reachable(0));
  EXPECT_FALSE(n.reachable(1));
  EXPECT_TRUE(std::isinf(n.fetchCost(1)));
  // Normalization runs over reachable proxies only: the single
  // reachable proxy sits exactly at the mean.
  EXPECT_DOUBLE_EQ(n.fetchCost(0), 1.0);
  EXPECT_DOUBLE_EQ(n.normalizationMean(), 2.0);
  EXPECT_NO_THROW(n.checkInvariants());
}

TEST(NetworkReachable, CustomConstructorValidatesPlacement) {
  {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    EXPECT_THROW(Network(std::move(g), 0, {1, 1}), CheckFailure);
  }
  {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    EXPECT_THROW(Network(std::move(g), 0, {0, 1}), CheckFailure);
  }
  {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    EXPECT_THROW(Network(std::move(g), 0, {1, 7}), CheckFailure);
  }
}

TEST(LinkState, SeedFastPathReturnsTheExactSeedCosts) {
  const Network n = randomNetwork();
  LinkState ls(n);
  EXPECT_FALSE(ls.anyLinkDown());
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    // Bitwise equality: while no link is down the overlay must hand out
    // the very doubles the seed network stores.
    EXPECT_EQ(ls.fetchCost(p), n.fetchCost(p));
    EXPECT_TRUE(ls.reachable(p));
    EXPECT_TRUE(ls.pathToPublisher(p));
  }
  EXPECT_NO_THROW(ls.checkInvariants());
}

TEST(LinkState, ProxyCrashTogglesAreIdempotent) {
  const Network n = randomNetwork();
  LinkState ls(n);
  ls.setProxyDown(3);
  ls.setProxyDown(3);
  EXPECT_TRUE(ls.proxyDown(3));
  EXPECT_EQ(ls.downProxyCount(), 1u);
  // A crashed process does not sever the network path.
  EXPECT_FALSE(ls.reachable(3));
  EXPECT_TRUE(ls.pathToPublisher(3));
  ls.setProxyUp(3);
  ls.setProxyUp(3);
  EXPECT_FALSE(ls.proxyDown(3));
  EXPECT_EQ(ls.downProxyCount(), 0u);
  EXPECT_THROW(ls.setProxyDown(n.numProxies()), CheckFailure);
  EXPECT_NO_THROW(ls.checkInvariants());
}

TEST(LinkState, LinkFailureReroutesOverTheResidualGraph) {
  const Network n = diamondNetwork();
  // Seed: d(1) = 1, d(2) = 2, mean 1.5.
  EXPECT_DOUBLE_EQ(n.normalizationMean(), 1.5);
  LinkState ls(n);
  ls.setLinkDown(1, 2);
  EXPECT_TRUE(ls.anyLinkDown());
  EXPECT_EQ(ls.downLinkCount(), 1u);
  // Proxy on node 1 keeps its direct link; proxy on node 2 detours
  // through 0-3-2 at raw distance 10.
  EXPECT_DOUBLE_EQ(ls.fetchCost(0), 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(ls.fetchCost(1), 10.0 / 1.5);
  EXPECT_NO_THROW(ls.checkInvariants());
}

TEST(LinkState, PartitionedProxyGetsInfiniteCost) {
  const Network n = diamondNetwork();
  LinkState ls(n);
  ls.setLinkDown(0, 1);
  ls.setLinkDown(1, 2);
  // Node 1 lost both its edges: partitioned. Node 2 detours via 3.
  EXPECT_TRUE(std::isinf(ls.fetchCost(0)));
  EXPECT_FALSE(ls.pathToPublisher(0));
  EXPECT_FALSE(ls.reachable(0));
  EXPECT_DOUBLE_EQ(ls.fetchCost(1), 10.0 / 1.5);
  EXPECT_NO_THROW(ls.checkInvariants());
}

TEST(LinkState, RepairRestoresTheSeedFastPath) {
  const Network n = diamondNetwork();
  LinkState ls(n);
  ls.setLinkDown(1, 2);
  ls.setLinkDown(1, 2);  // idempotent
  EXPECT_EQ(ls.downLinkCount(), 1u);
  ls.setLinkUp(1, 2);
  EXPECT_FALSE(ls.anyLinkDown());
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    EXPECT_EQ(ls.fetchCost(p), n.fetchCost(p));
  }
  EXPECT_NO_THROW(ls.checkInvariants());
}

TEST(LinkState, EndpointOrderDoesNotMatter) {
  const Network n = diamondNetwork();
  LinkState ls(n);
  ls.setLinkDown(2, 1);  // reversed endpoints
  EXPECT_TRUE(ls.linkDown(1, 2));
  ls.setLinkUp(1, 2);
  EXPECT_FALSE(ls.linkDown(2, 1));
}

TEST(LinkState, RejectsUnknownLinks) {
  const Network n = diamondNetwork();
  LinkState ls(n);
  EXPECT_THROW(ls.setLinkDown(0, 2), CheckFailure);
  EXPECT_THROW(ls.setLinkUp(1, 3), CheckFailure);
}

TEST(LinkState, RandomTopologyResidualStaysConsistent) {
  const Network n = randomNetwork(21);
  LinkState ls(n);
  // Fail a handful of real edges and keep validating: the residual
  // cache must always match a fresh damaged-graph recompute.
  Rng rng(5);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId a = 0; a < n.graph().numNodes(); ++a) {
    for (const Graph::Edge& e : n.graph().neighbors(a)) {
      if (a < e.to) edges.push_back({a, e.to});
    }
  }
  for (int step = 0; step < 40; ++step) {
    const auto& [a, b] = edges[rng.uniformInt(edges.size())];
    if (ls.linkDown(a, b)) {
      ls.setLinkUp(a, b);
    } else {
      ls.setLinkDown(a, b);
    }
    for (ProxyId p = 0; p < n.numProxies(); ++p) {
      (void)ls.fetchCost(p);  // force the lazy residual refresh
    }
    ASSERT_NO_THROW(ls.checkInvariants()) << "after step " << step;
  }
}

}  // namespace
}  // namespace pscd
