#include "pscd/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pscd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, UniformIntUnbiased) {
  Rng rng(12);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniformInt(std::uint64_t{7})];
  for (const int c : counts) EXPECT_NEAR(c, n / 7, 400);
}

TEST(RngTest, SignedUniformIntInclusive) {
  Rng rng(13);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(std::int64_t{-2}, std::int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    sawLo |= (v == -2);
    sawHi |= (v == 2);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(16);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(18);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(19);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitMix64KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace pscd
