#include "pscd/sim/metrics.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

TEST(MetricsTest, HitRatioAggregates) {
  SimMetrics m(3, 0);
  m.recordRequest(0, 1.0, true, false, 0);
  m.recordRequest(1, 2.0, false, false, 100);
  m.recordRequest(1, 3.0, true, false, 0);
  m.recordRequest(2, 4.0, false, true, 50);
  EXPECT_EQ(m.requests(), 4u);
  EXPECT_EQ(m.hits(), 2u);
  EXPECT_DOUBLE_EQ(m.hitRatio(), 0.5);
  EXPECT_EQ(m.staleMisses(), 1u);
}

TEST(MetricsTest, PerProxyRatios) {
  SimMetrics m(2, 0);
  m.recordRequest(0, 1.0, true, false, 0);
  m.recordRequest(0, 2.0, false, false, 10);
  m.recordRequest(1, 3.0, true, false, 0);
  EXPECT_DOUBLE_EQ(m.proxyHitRatio(0), 0.5);
  EXPECT_DOUBLE_EQ(m.proxyHitRatio(1), 1.0);
  EXPECT_THROW(m.proxyHitRatio(5), std::out_of_range);
}

TEST(MetricsTest, MeanResponseTimeAverages) {
  SimMetrics m(1, 0);
  m.recordRequest(0, 1.0, true, false, 0, 5.0);
  m.recordRequest(0, 2.0, false, false, 10, 105.0);
  EXPECT_DOUBLE_EQ(m.meanResponseTime(), 55.0);
}

TEST(MetricsTest, MeanResponseTimeEmptyIsZero) {
  SimMetrics m(1, 0);
  EXPECT_DOUBLE_EQ(m.meanResponseTime(), 0.0);
}

TEST(MetricsTest, EmptyRatiosAreZero) {
  SimMetrics m(1, 0);
  EXPECT_DOUBLE_EQ(m.hitRatio(), 0.0);
  EXPECT_DOUBLE_EQ(m.proxyHitRatio(0), 0.0);
}

TEST(MetricsTest, TrafficSplit) {
  SimMetrics m(1, 0);
  m.recordPush(1.0, 3, 300);
  m.recordRequest(0, 2.0, false, false, 120);
  EXPECT_EQ(m.traffic().pushPages, 3u);
  EXPECT_EQ(m.traffic().pushBytes, 300u);
  EXPECT_EQ(m.traffic().fetchPages, 1u);
  EXPECT_EQ(m.traffic().fetchBytes, 120u);
  EXPECT_EQ(m.traffic().totalPages(), 4u);
  EXPECT_EQ(m.traffic().totalBytes(), 420u);
}

TEST(MetricsTest, HitsGenerateNoTraffic) {
  SimMetrics m(1, 0);
  m.recordRequest(0, 1.0, true, false, 0);
  EXPECT_EQ(m.traffic().totalPages(), 0u);
}

TEST(MetricsTest, HourlySeriesPopulated) {
  SimMetrics m(2, 48);
  ASSERT_TRUE(m.hasHourly());
  EXPECT_EQ(m.hours(), 48u);
  m.recordRequest(0, 10.0, true, false, 0);
  m.recordRequest(0, 20.0, false, false, 100);
  m.recordPush(3700.0, 2, 500);
  EXPECT_DOUBLE_EQ(m.hourlyHitRatio(0), 0.5);
  EXPECT_DOUBLE_EQ(m.hourlyTrafficPages(0), 1.0);  // the fetch
  EXPECT_DOUBLE_EQ(m.hourlyTrafficPages(1), 2.0);  // the push
  EXPECT_EQ(m.hourlyTrafficBytes(1), 500u);
}

TEST(MetricsTest, HourlyDisabledThrows) {
  SimMetrics m(1, 0);
  EXPECT_FALSE(m.hasHourly());
  EXPECT_EQ(m.hours(), 0u);
  EXPECT_THROW(m.hourlyHitRatio(0), std::logic_error);
  EXPECT_THROW(m.hourlyTrafficPages(0), std::logic_error);
}

TEST(MetricsTest, ProxyRangeChecked) {
  SimMetrics m(1, 0);
  EXPECT_THROW(m.recordRequest(4, 0.0, true, false, 0), std::out_of_range);
}

}  // namespace
}  // namespace pscd
