// Fixture: includes a project header (unused_dep.h, masquerading as
// src/pscd/util/unused_dep_fixture.h) and never references any symbol
// it declares — the IWYU-lite unused-include rule must fire on the
// include line. Requires --manifest.
// pscd-lint: as-path(src/pscd/util/unused_include_fixture.cpp)
#include "pscd/util/unused_dep_fixture.h"  // pscd-lint: expect(unused-include)

namespace fixture {

int answerWithoutTheDep() { return 42; }

}  // namespace fixture
