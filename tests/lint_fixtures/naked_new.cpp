// Fixture: naked new/delete in library code (simulated via as-path).
// A deleted special member is not a deallocation and must stay silent.
// pscd-lint: as-path(src/pscd/util/naked_new_fixture.cpp)
#include <memory>

namespace fixture {

struct Buffer {
  int* data = nullptr;

  Buffer() { data = new int[16]; }  // pscd-lint: expect(naked-new)
  ~Buffer() { delete[] data; }  // pscd-lint: expect(naked-new)
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  static std::unique_ptr<Buffer> make() { return std::make_unique<Buffer>(); }
};

}  // namespace fixture
