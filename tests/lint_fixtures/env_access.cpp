// Fixture: ambient environment reads/writes outside bench_common.h make
// behavior depend on state no seed controls.
#include <cstdlib>

namespace fixture {

const char* threadOverride() {
  return std::getenv("PSCD_THREADS");  // pscd-lint: expect(env-access)
}

void pollute() {
  setenv("PSCD_MODE", "fast", 1);  // pscd-lint: expect(env-access)
}

}  // namespace fixture
