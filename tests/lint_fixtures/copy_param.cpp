// Fixture: by-value heavy parameters on PSCD_HOT functions fire; the
// const-reference twins stay silent, and the rule also covers hot
// declarations without bodies.
// pscd-lint: as-path(src/pscd/util/copy_param_fixture.cpp)
#include <memory>
#include <string>
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Handler {
  PSCD_HOT int consume(std::string name,  // pscd-lint: expect(copy-param)
                       const std::vector<int>& xs) {
    return static_cast<int>(name.size() + xs.size());
  }

  PSCD_HOT int retain(std::shared_ptr<int> owner) {  // pscd-lint: expect(copy-param)
    return owner ? *owner : 0;
  }

  // Declaration-only hot function: the parameter scan still applies.
  PSCD_HOT int forward(std::vector<int> xs);  // pscd-lint: expect(copy-param)

  PSCD_HOT int inspect(const std::string& name) {  // const&: no finding
    return static_cast<int>(name.size());
  }
};

}  // namespace fixture
