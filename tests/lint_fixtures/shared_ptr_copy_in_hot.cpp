// Fixture: copying a shared_ptr (refcount bump) inside a PSCD_HOT body
// fires; moves, make_shared initialization, and default construction
// stay silent.
// pscd-lint: as-path(src/pscd/util/shared_ptr_copy_fixture.cpp)
#include <memory>
#include <utility>

#include "pscd/util/hot.h"

namespace fixture {

struct Router {
  std::shared_ptr<int> route_;

  PSCD_HOT int send(int v) {
    std::shared_ptr<int> copy = route_;  // pscd-lint: expect(shared-ptr-copy-in-hot)
    std::shared_ptr<int> moved = std::move(copy);  // move: no finding
    std::shared_ptr<int> empty;  // default construction: no finding
    empty = moved;
    return empty ? *empty + v : v;
  }
};

}  // namespace fixture
