// Fixture: the wall-clock rule must fire on every banned clock access.
// Lines without expect() must stay silent — the corpus check demands an
// exact match between expectations and findings.
#include <chrono>
#include <ctime>

namespace fixture {

double sampleNow() {
  const auto t0 = std::chrono::steady_clock::now();  // pscd-lint: expect(wall-clock)
  const std::time_t wall = std::time(nullptr);  // pscd-lint: expect(wall-clock)
  (void)gmtime(&wall);  // pscd-lint: expect(wall-clock)
  return static_cast<double>(t0.time_since_epoch().count());
}

}  // namespace fixture
