// Fixture: allocations inside a PSCD_HOT body. The identical
// constructions in the un-annotated twin below must stay silent — the
// perf rules are scoped to hot regions, not to the whole file.
// pscd-lint: as-path(src/pscd/util/alloc_in_hot_fixture.cpp)
#include <memory>
#include <string>
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Scanner {
  PSCD_HOT int scan(int n) {
    std::vector<int> tmp;  // pscd-lint: expect(alloc-in-hot)
    auto boxed = std::make_unique<int>(n);  // pscd-lint: expect(alloc-in-hot)
    auto shared = std::make_shared<int>(n);  // pscd-lint: expect(alloc-in-hot)
    std::string label(static_cast<std::size_t>(n), 'x');  // pscd-lint: expect(alloc-in-hot)
    tmp.resize(static_cast<std::size_t>(*boxed + *shared));
    return static_cast<int>(tmp.size() + label.size());
  }

  int cold(int n) {
    std::vector<int> fine;  // not a hot region: no finding
    fine.resize(static_cast<std::size_t>(n));
    return static_cast<int>(fine.size());
  }
};

}  // namespace fixture
