// Fixture: simulates a src/pscd/ translation unit (via as-path) that
// iterates an unordered container while writing stream/CSV output.
// The membership test `find() != end()` on the same container must
// NOT fire — it never iterates.
// pscd-lint: as-path(src/pscd/cache/unordered_iter_fixture.cpp)
#include <ostream>
#include <unordered_map>

namespace fixture {

struct Stats {
  std::unordered_map<int, long> hitsByPage;

  void dump(std::ostream& out) const {
    for (const auto& kv : hitsByPage) {  // pscd-lint: expect(unordered-iter)
      out << kv.first << ',' << kv.second << '\n';
    }
    auto it = hitsByPage.begin();  // pscd-lint: expect(unordered-iter)
    if (it != hitsByPage.end()) {
      out << it->first << '\n';
    }
    if (hitsByPage.find(0) != hitsByPage.end()) {
      out << "page 0 present\n";
    }
  }
};

}  // namespace fixture
