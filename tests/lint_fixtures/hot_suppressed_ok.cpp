// Fixture: a PSCD_HOT function whose perf findings all carry justified
// allow() suppressions — strict mode must report nothing, and the
// strict suppression-hygiene pass verifies every allow() is actually
// used (an unused one would itself be a lint-directive finding).
// pscd-lint: as-path(src/pscd/util/hot_suppressed_fixture.cpp)
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Collector {
  PSCD_HOT std::vector<int> collect(int n) {
    // pscd-lint: allow(alloc-in-hot) fixture: the result escapes to the caller
    std::vector<int> out;
    for (int i = 0; i < n; ++i) {
      // pscd-lint: allow(grow-without-reserve) fixture: growth bounded by caller-validated n
      out.push_back(i);
    }
    return out;
  }
};

}  // namespace fixture
