// Fixture: assert() aborts and compiles out under NDEBUG; PSCD_CHECK is
// always on and catchable. static_assert is compile-time and fine.
#include <cassert>

namespace fixture {

int clampPositive(int v) {
  assert(v >= -1000);  // pscd-lint: expect(bare-assert)
  static_assert(sizeof(int) >= 4, "int is at least 32 bits");
  return v < 0 ? 0 : v;
}

}  // namespace fixture
