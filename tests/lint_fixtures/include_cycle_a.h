// Fixture: mutual include cycle between two headers. Each side really
// references the other's type, so unused-include stays quiet and the
// only finding is the cycle itself — reported once, anchored at the
// lexicographically smallest member (this file). Requires --manifest.
// pscd-lint: as-path(src/pscd/util/cycle_a_fixture.h)
#include "pscd/util/cycle_b_fixture.h"  // pscd-lint: expect(include-cycle)

namespace fixture {

struct CycleA {
  CycleB* peer;
};

}  // namespace fixture
