// Fixture: a range-for binding elements by value (auto, no &) inside a
// PSCD_HOT body fires; const-reference and mutable-reference bindings
// stay silent.
// pscd-lint: as-path(src/pscd/util/copy_in_loop_fixture.cpp)
#include <string>
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Joiner {
  PSCD_HOT std::size_t total(const std::vector<std::string>& parts) {
    std::size_t sum = 0;
    for (auto part : parts) {  // pscd-lint: expect(copy-in-loop)
      sum += part.size();
    }
    for (const auto& part : parts) {
      sum += part.size();  // by reference: no finding
    }
    return sum;
  }
};

}  // namespace fixture
