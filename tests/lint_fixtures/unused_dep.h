// Fixture: a dependency header whose only declaration is never
// referenced by unused_include.cpp — the bait for the unused-include
// rule. This file itself is clean.
// pscd-lint: as-path(src/pscd/util/unused_dep_fixture.h)

namespace fixture {

struct UnusedDep {
  int id;
};

}  // namespace fixture
