// Fixture: every violation below carries an allow() suppression with a
// justification, so the file must produce zero findings even in strict
// mode (which additionally verifies each suppression is actually used).
// Exercises both placements: trailing comment (targets its own line)
// and standalone comment (targets the next line that carries a token).
#include <cassert>
#include <cstdlib>

namespace fixture {

int suppressedAll(int v) {
  assert(v >= 0);  // pscd-lint: allow(bare-assert) fixture: suppression demo
  // pscd-lint: allow(env-access) standalone placement targets the next line
  const char* home = std::getenv("HOME");
  return home != nullptr ? v : -v;
}

}  // namespace fixture
