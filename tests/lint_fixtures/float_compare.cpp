// Fixture: exact floating-point equality. The as-path places this file
// in the library so the tests/ exemption does not apply; integer
// comparisons on the same lines of code must stay silent.
// pscd-lint: as-path(src/pscd/sim/float_compare_fixture.cpp)

namespace fixture {

bool converged(double err, double prev) {
  if (err == prev) return true;  // pscd-lint: expect(float-compare)
  return err == 0.0;  // pscd-lint: expect(float-compare)
}

bool sameCount(int a, int b) { return a == b; }

}  // namespace fixture
