// Fixture: map operator[] in a hot loop fires (a miss default-constructs
// the mapped value every iteration); the same access outside a loop is
// a one-off and stays silent.
// pscd-lint: as-path(src/pscd/util/map_bracket_insert_fixture.cpp)
#include <unordered_map>
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Histogram {
  std::unordered_map<int, int> counts_;

  PSCD_HOT void add(const std::vector<int>& keys) {
    for (const int k : keys) {
      ++counts_[k];  // pscd-lint: expect(map-bracket-insert)
    }
    counts_[0] += 1;  // not in a loop: no finding
  }
};

}  // namespace fixture
