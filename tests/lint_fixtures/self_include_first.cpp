// Fixture: a .cpp whose own header is in the scan set but is not its
// first include — the self-include-first rule fires on the offending
// first include. Requires --manifest.
// pscd-lint: as-path(src/pscd/util/self_first_fixture.cpp)
#include <cstdint>  // pscd-lint: expect(self-include-first)
#include "pscd/util/self_first_fixture.h"

namespace fixture {

int declaredInHeader() { return static_cast<int>(sizeof(std::uint64_t)); }

}  // namespace fixture
