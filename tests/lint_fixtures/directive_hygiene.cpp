// Fixture: --strict reports suppression-hygiene problems under the
// lint-directive meta-rule — allow() naming a rule that does not exist,
// and allow() on a line where the named rule produces no finding.
namespace fixture {

int hygiene() {
  int x = 1;  // pscd-lint: allow(no-such-rule) expect(lint-directive)
  int y = 2;  // pscd-lint: allow(bare-assert) expect(lint-directive) nothing fires here
  return x + y;
}

}  // namespace fixture
