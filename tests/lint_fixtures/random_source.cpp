// Fixture: non-reproducible / globally seeded random sources must be
// flagged; pscd::Rng with an explicit seed is the only sanctioned one.
#include <cstdlib>
#include <random>

namespace fixture {

int drawTwo() {
  std::mt19937 gen(12345);  // pscd-lint: expect(random-source)
  std::random_device seeder;  // pscd-lint: expect(random-source)
  const int a = static_cast<int>(gen() % 7);
  const int b = rand() % 7;  // pscd-lint: expect(random-source)
  (void)seeder;
  return a + b;
}

}  // namespace fixture
