// Fixture: pointer-value ordering and hashing is run-to-run
// nondeterministic under ASLR; stable ids must be keyed on instead.
#include <cstddef>
#include <functional>
#include <map>
#include <memory>

namespace fixture {

struct Node {
  int id = 0;
};

using BadMap = std::map<Node*, int, std::less<Node*>>;  // pscd-lint: expect(ptr-order)

bool before(const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
  return a.get() < b.get();  // pscd-lint: expect(ptr-order)
}

std::size_t badHash(Node* n) {
  return std::hash<Node*>{}(n);  // pscd-lint: expect(ptr-order)
}

bool sameObject(const std::unique_ptr<Node>& a, Node* raw) {
  return a.get() == raw;  // equality is identity, not ordering: silent
}

}  // namespace fixture
