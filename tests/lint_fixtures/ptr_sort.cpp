// Fixture: sorting a pointer container without a comparator orders by
// address. The comparator form on the same container must NOT fire.
#include <algorithm>
#include <vector>

namespace fixture {

struct Page {
  int id = 0;
};

void order(std::vector<Page*>& pages) {
  std::sort(pages.begin(), pages.end());  // pscd-lint: expect(ptr-sort)
  std::stable_sort(pages.begin(), pages.end());  // pscd-lint: expect(ptr-sort)
  std::sort(pages.begin(), pages.end(),
            [](const Page* a, const Page* b) { return a->id < b->id; });
}

}  // namespace fixture
