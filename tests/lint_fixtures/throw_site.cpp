// Fixture: only util/check.h, direct construction of a std:: exception
// type (the sanctioned API-contract idiom), and bare rethrow are legal
// throw sites; project types and non-exception values are not.
#include <stdexcept>
#include <string>

namespace fixture {

struct LocalError {
  std::string what;
};

void raise(int code) {
  if (code == 1) throw LocalError{"local type"};  // pscd-lint: expect(throw-site)
  if (code == 2) throw 42;  // pscd-lint: expect(throw-site)
  if (code == 3) throw std::invalid_argument("sanctioned typed throw");
  try {
    raise(code - 1);
  } catch (...) {
    throw;  // bare rethrow is allowed
  }
}

}  // namespace fixture
