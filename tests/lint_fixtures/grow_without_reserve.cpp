// Fixture: a hot loop growing a vector with no reserve() in the same
// function fires; the reserved twin stays silent.
// pscd-lint: as-path(src/pscd/util/grow_without_reserve_fixture.cpp)
#include <vector>

#include "pscd/util/hot.h"

namespace fixture {

struct Builder {
  PSCD_HOT std::vector<int> build(const std::vector<int>& xs) {
    // pscd-lint: allow(alloc-in-hot) fixture: this file exercises the growth rule
    std::vector<int> out;
    for (const int x : xs) {
      out.push_back(x);  // pscd-lint: expect(grow-without-reserve)
    }
    // pscd-lint: allow(alloc-in-hot) fixture: reserved twin must stay silent below
    std::vector<int> good;
    good.reserve(xs.size());
    for (const int x : xs) {
      good.push_back(x);  // reserve() above: no finding
    }
    out.insert(out.end(), good.begin(), good.end());
    return out;
  }
};

}  // namespace fixture
