// Fixture: sibling header of self_include_first.cpp; exists so the
// scan set contains the .cpp's own header and the self-include-first
// rule has something to demand. Clean on its own.
// pscd-lint: as-path(src/pscd/util/self_first_fixture.h)

namespace fixture {

int declaredInHeader();

}  // namespace fixture
