// Fixture: the second half of the include_cycle_a.h cycle. The cycle
// finding is anchored at the smaller path (cycle_a_fixture.h), so this
// file itself must stay silent.
// pscd-lint: as-path(src/pscd/util/cycle_b_fixture.h)
#include "pscd/util/cycle_a_fixture.h"

namespace fixture {

struct CycleB {
  CycleA* owner;
};

}  // namespace fixture
