// Fixture: a cache-layer file reaching up into the sim layer. The
// layering manifest (tools/pscd_lint/layers.txt) has no cache -> sim
// edge — caching strategies must never know about the event loop. The
// rule only runs when the corpus is linted with --manifest.
// pscd-lint: as-path(src/pscd/cache/layer_violation_fixture.cpp)
#include "pscd/sim/simulator.h"  // pscd-lint: expect(layer-violation)

namespace fixture {

int touchesTheSimulator() { return 0; }

}  // namespace fixture
