// Edge cases across modules that the per-module suites do not reach:
// full-scale workload validation (a boundary bug once lived only at the
// 195k-request scale), degenerate capacities, deep broker chains, and
// serializer version gating.
#include <gtest/gtest.h>

#include <sstream>

#include "pscd/pscd.h"

namespace pscd {
namespace {

TEST(FullScaleTest, NewsWorkloadValidates) {
  const Workload w = buildWorkload(newsTraceParams());
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.requests.size(), 195000u);
  // The paper's publishing stream is ~30k events; ours lands nearby.
  EXPECT_GT(w.publishes.size(), 25000u);
  EXPECT_LT(w.publishes.size(), 45000u);
}

TEST(FullScaleTest, AlternativeWorkloadValidates) {
  const Workload w = buildWorkload(alternativeTraceParams());
  EXPECT_NO_THROW(w.validate());
  // Flatter popularity: many more distinct (page, proxy) pairs.
  const Workload news = buildWorkload(newsTraceParams());
  EXPECT_GT(w.subEntries.size(), news.subEntries.size());
}

TEST(EdgeCaseTest, ZipfSingleRank) {
  const ZipfDistribution z(1, 1.5);
  Rng rng(1);
  EXPECT_EQ(z.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(z.pmf(1), 1.0);
}

TEST(EdgeCaseTest, ZeroCapacityCacheNeverStores) {
  for (const StrategyKind kind : kPaperStrategies) {
    const auto s = makeStrategy(kind, {.capacity = 0, .fetchCost = 1.0,
                                       .beta = 2.0});
    s->onPush({1, 0, 10, 5, 0.0});
    const auto out = s->onRequest({1, 0, 10, 5, 1.0});
    EXPECT_FALSE(out.hit) << strategyName(kind);
    EXPECT_EQ(s->usedBytes(), 0u) << strategyName(kind);
    s->checkInvariants();
  }
}

TEST(EdgeCaseTest, OneBytePagesInOneByteCache) {
  const auto s = makeStrategy(StrategyKind::kSG2,
                              {.capacity = 1, .fetchCost = 1.0, .beta = 2.0});
  EXPECT_TRUE(s->onPush({1, 0, 1, 5, 0.0}).stored);
  EXPECT_TRUE(s->onRequest({1, 0, 1, 5, 1.0}).hit);
  // The next push must displace the (drained) single resident.
  EXPECT_TRUE(s->onPush({2, 0, 1, 5, 2.0}).stored);
  EXPECT_FALSE(s->onRequest({1, 0, 1, 5, 3.0}).hit);
}

TEST(EdgeCaseTest, PushWithZeroSubscriptionsIsHarmless) {
  for (const StrategyKind kind : kPaperStrategies) {
    const auto s = makeStrategy(kind, {.capacity = 1000, .fetchCost = 1.0,
                                       .beta = 2.0});
    EXPECT_NO_THROW(s->onPush({1, 0, 10, 0, 0.0})) << strategyName(kind);
    s->checkInvariants();
  }
}

TEST(EdgeCaseTest, BrokerChainTopology) {
  // A pure chain 0 <- 1 <- 2 <- 3: advertisements travel the full depth.
  BrokerTree chain({0, 0, 1, 2});
  chain.attachProxy(0, 3);
  Subscription s;
  s.proxy = 0;
  s.conjuncts = {{Predicate::Kind::kCategoryEq, 1}};
  chain.subscribe(s);
  EXPECT_EQ(chain.controlMessages(), 3u);
  ContentAttributes e;
  e.category = 1;
  const auto out = chain.publish(e);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(chain.eventMessages(), 3u);
}

TEST(EdgeCaseTest, SingleBrokerTreeIsCentralized) {
  BrokerTree solo(std::vector<BrokerId>{0});
  solo.attachProxy(2, 0);
  Subscription s;
  s.proxy = 2;
  s.conjuncts = {{Predicate::Kind::kPageIdEq, 4}};
  solo.subscribe(s);
  EXPECT_EQ(solo.controlMessages(), 0u);
  ContentAttributes e;
  e.page = 4;
  EXPECT_EQ(solo.publish(e).size(), 1u);
  EXPECT_EQ(solo.eventMessages(), 0u);
  EXPECT_EQ(solo.floodEventMessages(), 0u);
}

TEST(EdgeCaseTest, EmptyCoveringSetMatchesNothing) {
  const CoveringSet set;
  ContentAttributes e;
  e.category = 1;
  EXPECT_FALSE(set.matches(e));
  Subscription s;
  s.conjuncts = {{Predicate::Kind::kCategoryEq, 1}};
  EXPECT_FALSE(set.isCovered(s));
}

TEST(EdgeCaseTest, SerializerRejectsOldFormatVersion) {
  // Craft a header with the right magic but format version 1.
  std::stringstream buf;
  buf.write("PSCDTRC1", 8);
  const std::uint32_t v1 = 1;
  buf.write(reinterpret_cast<const char*>(&v1), sizeof(v1));
  buf << std::string(64, '\0');
  EXPECT_THROW(loadWorkload(buf), std::runtime_error);
}

TEST(EdgeCaseTest, HourlySeriesAcceptsHorizonBoundary) {
  HourlySeries s(168);
  s.add(168 * kHour, 1.0);  // exactly the end of the week clamps in
  EXPECT_DOUBLE_EQ(s.numerator(167), 1.0);
}

TEST(EdgeCaseTest, RequestsNeverExceedHorizon) {
  // Regression: pages published in the horizon's last minute must not
  // generate requests past the end of the week.
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 500;
  p.publishing.numUpdatedPages = 200;
  p.request.totalRequests = 50000;
  p.request.numProxies = 10;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    p.seed = seed;
    const Workload w = buildWorkload(p);
    for (const auto& r : w.requests) {
      ASSERT_LE(r.time, p.publishing.horizon);
    }
  }
}

TEST(EdgeCaseTest, OracleWithEmptySchedule) {
  OracleStrategy s(100, RequestSchedule{});
  EXPECT_FALSE(s.onPush({1, 0, 10, 5, 0.0}).stored);
  EXPECT_FALSE(s.onRequest({1, 0, 10, 5, 1.0}).hit);
  EXPECT_EQ(s.usedBytes(), 0u);
}

TEST(EdgeCaseTest, HierarchySingleProxyPerParent) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 200;
  p.publishing.numUpdatedPages = 80;
  p.request.totalRequests = 3000;
  p.request.numProxies = 4;
  p.request.minServerPool = 2;
  const Workload w = buildWorkload(p);
  Rng rng(2);
  const Network net(NetworkParams{.numProxies = 4}, rng);
  HierarchyConfig hc;
  hc.numParents = 4;  // one leaf per parent
  const auto r = runHierarchical(w, net, hc);
  EXPECT_EQ(r.requests, w.requests.size());
}

}  // namespace
}  // namespace pscd
