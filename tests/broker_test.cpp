#include "pscd/pubsub/broker.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

ContentAttributes pageAttrs(PageId page) {
  ContentAttributes a;
  a.page = page;
  return a;
}

TEST(BrokerTest, AggregatedCountsAccumulate) {
  Broker b(4);
  b.subscribeAggregated(1, 10, 3);
  b.subscribeAggregated(1, 10, 2);
  EXPECT_EQ(b.aggregatedCount(1, 10), 5u);
  EXPECT_EQ(b.aggregatedCount(0, 10), 0u);
  EXPECT_EQ(b.aggregatedCount(1, 11), 0u);
}

TEST(BrokerTest, ZeroCountIgnored) {
  Broker b(2);
  b.subscribeAggregated(0, 5, 0);
  EXPECT_EQ(b.aggregatedCount(0, 5), 0u);
  EXPECT_TRUE(b.publish(pageAttrs(5)).empty());
}

TEST(BrokerTest, PublishReturnsSortedNotifications) {
  Broker b(5);
  b.subscribeAggregated(3, 7, 2);
  b.subscribeAggregated(0, 7, 1);
  b.subscribeAggregated(4, 7, 9);
  const auto n = b.publish(pageAttrs(7));
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], (Notification{0, 1}));
  EXPECT_EQ(n[1], (Notification{3, 2}));
  EXPECT_EQ(n[2], (Notification{4, 9}));
}

TEST(BrokerTest, PredicateSubscriptionsMergeWithAggregated) {
  Broker b(3);
  b.subscribeAggregated(1, 7, 2);
  Subscription s;
  s.proxy = 1;
  s.conjuncts = {{Predicate::Kind::kPageIdEq, 7}};
  b.subscribe(s);
  Subscription s2;
  s2.proxy = 2;
  s2.conjuncts = {{Predicate::Kind::kPageIdEq, 7}};
  b.subscribe(s2);
  const auto n = b.publish(pageAttrs(7));
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], (Notification{1, 3}));  // 2 aggregated + 1 predicate
  EXPECT_EQ(n[1], (Notification{2, 1}));
}

TEST(BrokerTest, UnsubscribeStopsNotifications) {
  Broker b(2);
  Subscription s;
  s.proxy = 0;
  s.conjuncts = {{Predicate::Kind::kCategoryEq, 1}};
  const auto id = b.subscribe(s);
  ContentAttributes a;
  a.page = 0;
  a.category = 1;
  EXPECT_EQ(b.publish(a).size(), 1u);
  EXPECT_TRUE(b.unsubscribe(id));
  EXPECT_TRUE(b.publish(a).empty());
}

TEST(BrokerTest, StatisticsTracked) {
  Broker b(2);
  b.subscribeAggregated(0, 1, 4);
  b.publish(pageAttrs(1));
  b.publish(pageAttrs(2));
  EXPECT_EQ(b.publishCount(), 2u);
  EXPECT_EQ(b.notificationCount(), 4u);
}

TEST(BrokerTest, UnsubscribeAggregatedClampsAndRemoves) {
  Broker b(3);
  b.subscribeAggregated(1, 5, 4);
  EXPECT_EQ(b.unsubscribeAggregated(1, 5, 3), 3u);
  EXPECT_EQ(b.aggregatedCount(1, 5), 1u);
  // Removing more than present clamps and erases the entry entirely.
  EXPECT_EQ(b.unsubscribeAggregated(1, 5, 10), 1u);
  EXPECT_EQ(b.aggregatedCount(1, 5), 0u);
  ContentAttributes a;
  a.page = 5;
  EXPECT_TRUE(b.publish(a).empty());
}

TEST(BrokerTest, UnsubscribeUnknownIsNoop) {
  Broker b(2);
  EXPECT_EQ(b.unsubscribeAggregated(0, 9, 1), 0u);
  b.subscribeAggregated(0, 9, 1);
  EXPECT_EQ(b.unsubscribeAggregated(1, 9, 1), 0u);  // other proxy
  EXPECT_THROW(b.unsubscribeAggregated(5, 9, 1), std::out_of_range);
}

TEST(BrokerTest, RangeChecks) {
  Broker b(2);
  EXPECT_THROW(b.subscribeAggregated(2, 0, 1), std::out_of_range);
  Subscription s;
  s.proxy = 9;
  s.conjuncts = {{Predicate::Kind::kPageIdEq, 0}};
  EXPECT_THROW(b.subscribe(s), std::out_of_range);
  EXPECT_THROW(Broker(0), std::invalid_argument);
}

TEST(BrokerTest, PublishForUnknownPageIsEmpty) {
  Broker b(2);
  EXPECT_TRUE(b.publish(pageAttrs(42)).empty());
  EXPECT_EQ(b.publishCount(), 1u);
}

}  // namespace
}  // namespace pscd
