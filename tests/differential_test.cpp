// Differential oracle tests: every optimized subsystem is driven in
// lockstep with its deliberately naive reference model
// (src/pscd/oracle/) over seeded randomized operation streams. A clean
// run must complete >= 1000 steps with no divergence; a run whose
// production side is sabotaged through the InvariantCorrupter backdoor
// must diverge and report the replayable (seed, step) pair.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "pscd/cache/dual_methods.h"
#include "pscd/cache/gds_family.h"
#include "pscd/cache/lru_strategy.h"
#include "pscd/cache/sub_strategy.h"
#include "pscd/cache/value_cache.h"
#include "pscd/oracle/lockstep.h"
#include "pscd/oracle/reference_cache.h"
#include "pscd/oracle/reference_paths.h"
#include "pscd/pubsub/covering.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/topology/link_state.h"
#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {

/// Test-only backdoor (friended by the core containers) that damages
/// internal production state in ways the public API prevents, so the
/// lockstep drivers can prove they detect a broken implementation.
class InvariantCorrupter {
 public:
  static void driftUsedBytes(ValueCache& c) { ++c.used_; }
  static void driftUsedBytes(GdsFamilyStrategy& s) {
    driftUsedBytes(s.cache_);
  }
  static void driftUsedBytes(SubStrategy& s) { driftUsedBytes(s.cache_); }
  static void driftUsedBytes(DualMethodsStrategy& s) { ++s.used_; }
  static void driftUsedBytes(LruStrategy& s) { ++s.used_; }

  static void inflateLiveCount(MatchingEngine& m) { ++m.liveCount_; }
  static void dropIndexBucket(MatchingEngine& m) {
    ASSERT_FALSE(m.index_.empty());
    m.index_.erase(m.index_.begin());
  }

  static void dropFrontierMember(CoveringSet& c) {
    ASSERT_FALSE(c.members_.empty());
    c.members_.pop_back();
  }

  static void driftResidualCost(LinkState& s) {
    ASSERT_FALSE(s.residualDirty_);  // caller must force the refresh first
    for (double& c : s.residualCost_) {
      if (std::isfinite(c)) {
        c += 0.5;
        return;
      }
    }
    FAIL() << "no finite residual cost to perturb";
  }
};

namespace {

constexpr std::size_t kSteps = 1200;
constexpr Bytes kCapacity = 256;
constexpr double kFetchCost = 2.5;

// ------------------------------------------------------------ matcher --

TEST(MatcherLockstep, AgreesWithReferenceOverRandomStreams) {
  for (const std::uint64_t seed : {11ull, 20260806ull}) {
    MatcherLockstepConfig config;
    config.seed = seed;
    config.steps = kSteps;
    const LockstepReport report = runMatcherLockstep(config);
    EXPECT_FALSE(report.diverged) << toString(report);
    EXPECT_EQ(report.stepsRun, kSteps);
  }
}

TEST(MatcherLockstep, DetectsInflatedLiveCount) {
  MatcherLockstepConfig config;
  config.seed = 7;
  config.steps = kSteps;
  config.sabotageStep = 500;
  config.sabotage = [](MatchingEngine& m) {
    InvariantCorrupter::inflateLiveCount(m);
  };
  const LockstepReport report = runMatcherLockstep(config);
  ASSERT_TRUE(report.diverged) << toString(report);
  EXPECT_EQ(report.seed, 7u);
  EXPECT_EQ(report.step, 500u);  // size compare runs after every op
  EXPECT_FALSE(report.what.empty());
}

TEST(MatcherLockstep, DetectsDroppedIndexBucket) {
  MatcherLockstepConfig config;
  config.seed = 7;
  config.steps = kSteps;
  config.sabotageStep = 500;
  config.sabotage = [](MatchingEngine& m) {
    InvariantCorrupter::dropIndexBucket(m);
  };
  const LockstepReport report = runMatcherLockstep(config);
  ASSERT_TRUE(report.diverged) << toString(report);
  // A missing posting list surfaces either as a wrong match set or as a
  // CheckFailure from the periodic invariant validation.
  EXPECT_GE(report.step, 500u);
  EXPECT_EQ(report.seed, 7u);
}

// ----------------------------------------------------------- covering --

TEST(CoveringLockstep, AgreesWithReferenceOverRandomStreams) {
  for (const std::uint64_t seed : {3ull, 424242ull}) {
    CoveringLockstepConfig config;
    config.seed = seed;
    config.steps = kSteps;
    const LockstepReport report = runCoveringLockstep(config);
    EXPECT_FALSE(report.diverged) << toString(report);
    EXPECT_EQ(report.stepsRun, kSteps);
  }
}

TEST(CoveringLockstep, DetectsDroppedFrontierMember) {
  CoveringLockstepConfig config;
  config.seed = 3;
  config.steps = kSteps;
  config.sabotageStep = 400;
  config.sabotage = [](CoveringSet& c) {
    InvariantCorrupter::dropFrontierMember(c);
  };
  const LockstepReport report = runCoveringLockstep(config);
  ASSERT_TRUE(report.diverged) << toString(report);
  EXPECT_EQ(report.step, 400u);  // member sets compared after every op
  EXPECT_EQ(report.seed, 3u);
}

// -------------------------------------------------------------- cache --

struct CachePair {
  const char* label;
  std::function<std::unique_ptr<DistributionStrategy>()> production;
  std::function<std::unique_ptr<DistributionStrategy>()> reference;
  std::function<void(DistributionStrategy&)> sabotage;
};

template <typename Production>
std::function<void(DistributionStrategy&)> driftSabotage() {
  return [](DistributionStrategy& s) {
    auto* typed = dynamic_cast<Production*>(&s);
    ASSERT_NE(typed, nullptr);
    InvariantCorrupter::driftUsedBytes(*typed);
  };
}

std::vector<CachePair> cachePairs() {
  std::vector<CachePair> pairs;
  pairs.push_back({"LRU",
                   [] { return std::make_unique<LruStrategy>(kCapacity); },
                   [] {
                     return std::make_unique<ReferenceLruStrategy>(kCapacity);
                   },
                   driftSabotage<LruStrategy>()});
  const std::vector<std::pair<const char*, GdsFamilyConfig>> family = {
      {"GD*", gdStarConfig(2.0)}, {"SG1", sg1Config(2.0)},
      {"SG2", sg2Config(1.0)},    {"SR", srConfig()},
      {"GDS", gdsConfig()},       {"LFU-DA", lfuDaConfig()},
  };
  for (const auto& [label, config] : family) {
    pairs.push_back(
        {label,
         [config] {
           return std::make_unique<GdsFamilyStrategy>(kCapacity, kFetchCost,
                                                      config);
         },
         [config] {
           return std::make_unique<ReferenceGdsFamilyStrategy>(
               kCapacity, kFetchCost, config);
         },
         driftSabotage<GdsFamilyStrategy>()});
  }
  pairs.push_back(
      {"SUB",
       [] { return std::make_unique<SubStrategy>(kCapacity, kFetchCost); },
       [] {
         return std::make_unique<ReferenceSubStrategy>(kCapacity, kFetchCost);
       },
       driftSabotage<SubStrategy>()});
  pairs.push_back({"DM",
                   [] {
                     return std::make_unique<DualMethodsStrategy>(
                         kCapacity, kFetchCost, 1.0);
                   },
                   [] {
                     return std::make_unique<ReferenceDualMethodsStrategy>(
                         kCapacity, kFetchCost, 1.0);
                   },
                   driftSabotage<DualMethodsStrategy>()});
  return pairs;
}

TEST(CacheLockstep, EveryStrategyAgreesWithItsReference) {
  // All (strategy, seed) runs go through the parallel batch helper;
  // report order (and any divergence's seed/step) is schedule order.
  const std::vector<CachePair> pairs = cachePairs();
  std::vector<CacheLockstepConfig> configs;
  std::vector<const char*> labels;
  for (const CachePair& pair : pairs) {
    for (const std::uint64_t seed : {5ull, 998877ull}) {
      CacheLockstepConfig config;
      config.seed = seed;
      config.steps = kSteps;
      config.capacity = kCapacity;
      config.makeProduction = pair.production;
      config.makeReference = pair.reference;
      configs.push_back(std::move(config));
      labels.push_back(pair.label);
    }
  }
  const std::vector<LockstepReport> reports =
      runCacheLockstepBatch(configs, /*jobs=*/4);
  ASSERT_EQ(reports.size(), configs.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    SCOPED_TRACE(labels[i]);
    EXPECT_FALSE(reports[i].diverged)
        << labels[i] << ": " << toString(reports[i]);
    EXPECT_EQ(reports[i].stepsRun, kSteps);
    EXPECT_EQ(reports[i].seed, configs[i].seed);
  }
}

TEST(CacheLockstep, BatchPreservesSerialDivergenceReports) {
  // A sabotaged config inside a parallel batch must report the exact
  // same (seed, step) coordinates as a standalone serial run.
  const std::vector<CachePair> pairs = cachePairs();
  std::vector<CacheLockstepConfig> configs;
  for (const CachePair& pair : pairs) {
    CacheLockstepConfig config;
    config.seed = 5;
    config.steps = kSteps;
    config.capacity = kCapacity;
    config.makeProduction = pair.production;
    config.makeReference = pair.reference;
    config.sabotageStep = 300;
    config.sabotage = pair.sabotage;
    configs.push_back(std::move(config));
  }
  const std::vector<LockstepReport> parallel =
      runCacheLockstepBatch(configs, /*jobs=*/4);
  const std::vector<LockstepReport> serial =
      runCacheLockstepBatch(configs, /*jobs=*/1);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(pairs[i].label);
    ASSERT_TRUE(parallel[i].diverged) << toString(parallel[i]);
    EXPECT_EQ(parallel[i].seed, serial[i].seed);
    EXPECT_EQ(parallel[i].step, serial[i].step);
    EXPECT_EQ(parallel[i].what, serial[i].what);
    EXPECT_EQ(parallel[i].step, 300u);
  }
}

TEST(CacheLockstep, EveryStrategyDetectsDriftedByteAccounting) {
  for (const CachePair& pair : cachePairs()) {
    SCOPED_TRACE(pair.label);
    CacheLockstepConfig config;
    config.seed = 5;
    config.steps = kSteps;
    config.capacity = kCapacity;
    config.makeProduction = pair.production;
    config.makeReference = pair.reference;
    config.sabotageStep = 300;
    config.sabotage = pair.sabotage;
    const LockstepReport report = runCacheLockstep(config);
    ASSERT_TRUE(report.diverged) << pair.label << ": " << toString(report);
    // A one-byte accounting drift changes either the admission decision
    // of the very next operation or the usedBytes comparison after it.
    EXPECT_EQ(report.step, 300u) << pair.label;
    EXPECT_EQ(report.seed, 5u);
  }
}

// ------------------------------------------------------ shortest paths --

TEST(PathsLockstep, DijkstraAgreesWithBellmanFord) {
  for (const std::uint64_t seed : {17ull, 90210ull}) {
    PathsLockstepConfig config;
    config.seed = seed;
    config.steps = kSteps;
    const LockstepReport report = runPathsLockstep(config);
    EXPECT_FALSE(report.diverged) << toString(report);
    EXPECT_EQ(report.stepsRun, kSteps);
  }
}

TEST(PathsLockstep, DetectsPerturbedDistance) {
  PathsLockstepConfig config;
  config.seed = 17;
  config.steps = kSteps;
  config.sabotageStep = 250;
  config.sabotage = [](std::vector<double>& dist) {
    for (double& d : dist) {
      if (std::isfinite(d)) {
        d += 0.5;  // the source entry is always finite
        return;
      }
    }
    FAIL() << "no finite distance to perturb";
  };
  const LockstepReport report = runPathsLockstep(config);
  ASSERT_TRUE(report.diverged) << toString(report);
  EXPECT_EQ(report.step, 250u);
  EXPECT_EQ(report.seed, 17u);
}

// ------------------------------------------------ residual fetch costs --

/// Naive reference for LinkState::fetchCost: rebuild the damaged graph
/// without the down edges, run Bellman-Ford from the publisher, and
/// apply the seed normalization (mean division, 0.01 floor).
std::vector<double> residualReferenceCosts(const Network& n,
                                           const LinkState& ls) {
  Graph damaged(n.graph().numNodes());
  for (NodeId a = 0; a < n.graph().numNodes(); ++a) {
    for (const Graph::Edge& e : n.graph().neighbors(a)) {
      if (a < e.to && !ls.linkDown(a, e.to)) {
        damaged.addEdge(a, e.to, e.weight);
      }
    }
  }
  const std::vector<double> dist =
      bellmanFordPaths(damaged, n.publisherNode());
  std::vector<double> costs(n.numProxies());
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    const double d = dist[n.proxyNode(p)];
    costs[p] =
        std::isfinite(d) ? std::max(d / n.normalizationMean(), 0.01) : d;
  }
  return costs;
}

std::vector<std::pair<NodeId, NodeId>> seedEdges(const Network& n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId a = 0; a < n.graph().numNodes(); ++a) {
    for (const Graph::Edge& e : n.graph().neighbors(a)) {
      if (a < e.to) edges.push_back({a, e.to});
    }
  }
  return edges;
}

TEST(ResidualPathsLockstep, AgreesWithBellmanFordOnTheDamagedGraph) {
  for (const std::uint64_t seed : {13ull, 20260807ull}) {
    SCOPED_TRACE(seed);
    Rng netRng(seed);
    const Network n(NetworkParams{.numProxies = 10, .numTransitNodes = 5},
                    netRng);
    const auto edges = seedEdges(n);
    ASSERT_FALSE(edges.empty());
    LinkState ls(n);
    Rng toggles(seed + 1);
    for (std::size_t step = 0; step < kSteps; ++step) {
      const auto& [a, b] = edges[toggles.uniformInt(edges.size())];
      if (ls.linkDown(a, b)) {
        ls.setLinkUp(a, b);
      } else {
        ls.setLinkDown(a, b);
      }
      const std::vector<double> expected = residualReferenceCosts(n, ls);
      for (ProxyId p = 0; p < n.numProxies(); ++p) {
        const double got = ls.fetchCost(p);
        ASSERT_EQ(std::isfinite(got), std::isfinite(expected[p]))
            << "reachability diverged: seed=" << seed << " step=" << step
            << " proxy=" << p;
        if (std::isfinite(got)) {
          ASSERT_LE(std::abs(got - expected[p]),
                    1e-9 * (1.0 + std::abs(expected[p])))
              << "cost diverged: seed=" << seed << " step=" << step
              << " proxy=" << p;
        }
      }
    }
  }
}

TEST(ResidualPathsLockstep, DetectsDriftedResidualCache) {
  Rng netRng(13);
  const Network n(NetworkParams{.numProxies = 10, .numTransitNodes = 5},
                  netRng);
  LinkState ls(n);
  ls.setLinkDown(seedEdges(n).front().first, seedEdges(n).front().second);
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    (void)ls.fetchCost(p);  // force the lazy residual refresh
  }
  InvariantCorrupter::driftResidualCost(ls);
  // The drift is visible both to the lockstep compare and the overlay's
  // own self-check.
  const std::vector<double> expected = residualReferenceCosts(n, ls);
  bool diverged = false;
  for (ProxyId p = 0; p < n.numProxies(); ++p) {
    const double got = ls.fetchCost(p);
    if (std::isfinite(got) != std::isfinite(expected[p]) ||
        (std::isfinite(got) &&
         std::abs(got - expected[p]) > 1e-9 * (1.0 + std::abs(expected[p])))) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
  EXPECT_THROW(ls.checkInvariants(), CheckFailure);
}

// ------------------------------------------------------- replayability --

TEST(LockstepReport, DivergenceReplaysIdentically) {
  const auto run = [] {
    MatcherLockstepConfig config;
    config.seed = 31;
    config.steps = kSteps;
    config.sabotageStep = 200;
    config.sabotage = [](MatchingEngine& m) {
      InvariantCorrupter::inflateLiveCount(m);
    };
    return runMatcherLockstep(config);
  };
  const LockstepReport first = run();
  const LockstepReport second = run();
  ASSERT_TRUE(first.diverged);
  EXPECT_EQ(first.step, second.step);
  EXPECT_EQ(first.seed, second.seed);
  EXPECT_EQ(first.what, second.what);
  EXPECT_NE(toString(first).find("seed=31"), std::string::npos);
  EXPECT_NE(toString(first).find("step=200"), std::string::npos);
}

}  // namespace
}  // namespace pscd
