#include "pscd/pubsub/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pscd/util/rng.h"

namespace pscd {
namespace {

Subscription sub(ProxyId proxy, std::vector<Predicate> preds) {
  Subscription s;
  s.proxy = proxy;
  s.conjuncts = std::move(preds);
  return s;
}

ContentAttributes attrs(PageId page, std::uint32_t category,
                        std::vector<std::uint32_t> keywords = {}) {
  ContentAttributes a;
  a.page = page;
  a.category = category;
  a.keywords = std::move(keywords);
  return a;
}

TEST(PredicateTest, PageIdEq) {
  const Predicate p{Predicate::Kind::kPageIdEq, 7};
  EXPECT_TRUE(p.matches(attrs(7, 0)));
  EXPECT_FALSE(p.matches(attrs(8, 0)));
}

TEST(PredicateTest, CategoryEq) {
  const Predicate p{Predicate::Kind::kCategoryEq, 3};
  EXPECT_TRUE(p.matches(attrs(0, 3)));
  EXPECT_FALSE(p.matches(attrs(0, 4)));
}

TEST(PredicateTest, KeywordContains) {
  const Predicate p{Predicate::Kind::kKeywordContains, 11};
  EXPECT_TRUE(p.matches(attrs(0, 0, {5, 11, 9})));
  EXPECT_FALSE(p.matches(attrs(0, 0, {5, 9})));
  EXPECT_FALSE(p.matches(attrs(0, 0)));
}

TEST(SubscriptionTest, ConjunctionSemantics) {
  const auto s = sub(0, {{Predicate::Kind::kCategoryEq, 2},
                         {Predicate::Kind::kKeywordContains, 4}});
  EXPECT_TRUE(s.matches(attrs(1, 2, {4})));
  EXPECT_FALSE(s.matches(attrs(1, 2, {5})));
  EXPECT_FALSE(s.matches(attrs(1, 3, {4})));
}

TEST(SubscriptionTest, EmptyConjunctionNeverMatches) {
  const Subscription s;
  EXPECT_FALSE(s.matches(attrs(0, 0)));
}

TEST(SubscriptionTest, ToStringReadable) {
  const auto s = sub(3, {{Predicate::Kind::kCategoryEq, 7}});
  EXPECT_EQ(toString(s), "proxy 3: category==7");
}

TEST(MatchingEngineTest, SingleSubscriptionMatch) {
  MatchingEngine e;
  const auto id = e.addSubscription(sub(2, {{Predicate::Kind::kPageIdEq, 5}}));
  const auto r = e.match(attrs(5, 0));
  ASSERT_EQ(r.subscriptions.size(), 1u);
  EXPECT_EQ(r.subscriptions[0], id);
  ASSERT_EQ(r.proxyCounts.size(), 1u);
  EXPECT_EQ(r.proxyCounts[0], (std::pair<ProxyId, std::uint32_t>{2, 1}));
}

TEST(MatchingEngineTest, ConjunctionRequiresAllPredicates) {
  MatchingEngine e;
  e.addSubscription(sub(0, {{Predicate::Kind::kCategoryEq, 1},
                            {Predicate::Kind::kKeywordContains, 9}}));
  EXPECT_TRUE(e.match(attrs(0, 1, {9})).subscriptions.size() == 1);
  EXPECT_TRUE(e.match(attrs(0, 1, {8})).subscriptions.empty());
  EXPECT_TRUE(e.match(attrs(0, 2, {9})).subscriptions.empty());
}

TEST(MatchingEngineTest, DuplicatePredicatesCollapsed) {
  MatchingEngine e;
  e.addSubscription(sub(0, {{Predicate::Kind::kCategoryEq, 1},
                            {Predicate::Kind::kCategoryEq, 1}}));
  // If duplicates were kept, numConjuncts would be 2 and a single
  // category hit could never satisfy the subscription.
  EXPECT_EQ(e.match(attrs(0, 1)).subscriptions.size(), 1u);
}

TEST(MatchingEngineTest, PerProxyCountsAggregate) {
  MatchingEngine e;
  e.addSubscription(sub(1, {{Predicate::Kind::kCategoryEq, 5}}));
  e.addSubscription(sub(1, {{Predicate::Kind::kKeywordContains, 3}}));
  e.addSubscription(sub(4, {{Predicate::Kind::kCategoryEq, 5}}));
  const auto r = e.match(attrs(0, 5, {3}));
  ASSERT_EQ(r.proxyCounts.size(), 2u);
  EXPECT_EQ(r.proxyCounts[0], (std::pair<ProxyId, std::uint32_t>{1, 2}));
  EXPECT_EQ(r.proxyCounts[1], (std::pair<ProxyId, std::uint32_t>{4, 1}));
}

TEST(MatchingEngineTest, RemoveSubscription) {
  MatchingEngine e;
  const auto id = e.addSubscription(sub(0, {{Predicate::Kind::kPageIdEq, 1}}));
  EXPECT_EQ(e.size(), 1u);
  EXPECT_TRUE(e.removeSubscription(id));
  EXPECT_EQ(e.size(), 0u);
  EXPECT_TRUE(e.match(attrs(1, 0)).subscriptions.empty());
  EXPECT_FALSE(e.removeSubscription(id));     // double remove
  EXPECT_FALSE(e.removeSubscription(99999));  // unknown id
}

TEST(MatchingEngineTest, EmptyConjunctionRejected) {
  MatchingEngine e;
  EXPECT_THROW(e.addSubscription(sub(0, {})), std::invalid_argument);
}

TEST(MatchingEngineTest, KeywordOnlyNeedsOneOccurrence) {
  MatchingEngine e;
  e.addSubscription(sub(0, {{Predicate::Kind::kKeywordContains, 7}}));
  // Page attributes listing the keyword twice must not double-count.
  EXPECT_EQ(e.match(attrs(0, 0, {7, 7})).subscriptions.size(), 1u);
}

TEST(MatchingEngineTest, MatchesAgreeWithBruteForce) {
  // Property test: inverted-index matching == naive evaluation.
  Rng rng(123);
  MatchingEngine e;
  std::vector<Subscription> subs;
  for (int i = 0; i < 300; ++i) {
    Subscription s;
    s.proxy = static_cast<ProxyId>(rng.uniformInt(std::uint64_t{10}));
    const int n = 1 + static_cast<int>(rng.uniformInt(std::uint64_t{3}));
    for (int k = 0; k < n; ++k) {
      Predicate p;
      switch (rng.uniformInt(std::uint64_t{3})) {
        case 0:
          p.kind = Predicate::Kind::kPageIdEq;
          p.value =
              static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{20}));
          break;
        case 1:
          p.kind = Predicate::Kind::kCategoryEq;
          p.value =
              static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{5}));
          break;
        default:
          p.kind = Predicate::Kind::kKeywordContains;
          p.value =
              static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{8}));
      }
      s.conjuncts.push_back(p);
    }
    subs.push_back(s);
    e.addSubscription(s);
  }
  for (int trial = 0; trial < 200; ++trial) {
    ContentAttributes a;
    a.page = static_cast<PageId>(rng.uniformInt(std::uint64_t{20}));
    a.category = static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{5}));
    const int kw = static_cast<int>(rng.uniformInt(std::uint64_t{4}));
    for (int k = 0; k < kw; ++k) {
      a.keywords.push_back(
          static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{8})));
    }
    const auto got = e.match(a);
    std::size_t expected = 0;
    for (const auto& s : subs) expected += s.matches(a);
    EXPECT_EQ(got.subscriptions.size(), expected);
  }
}

}  // namespace
}  // namespace pscd
