// Unit tests for pscd_lint's whole-repo architecture pass (graph.h):
// Tarjan SCC on crafted graphs, witness-path minimality, layering
// manifest parsing (named diagnostics, driver exit 2), include
// resolution/normalization, and the unused-include exemptions —
// notably the macro-only headers (check.h, hot.h, thread_annotations.h)
// whose use is invisible to the token stream.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph.h"
#include "lint.h"

namespace pscd_lint {
namespace {

std::string writeTemp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

// A minimal manifest shared by the in-memory repo tests.
const char kManifest[] =
    "root src\n"
    "layer util src/pscd/util/\n"
    "layer sim  src/pscd/sim/\n"
    "allow sim -> util\n";

std::vector<Finding> lintMemoryRepo(const std::vector<MemoryFile>& files,
                                    bool strict = false) {
  std::string manifestError;
  std::vector<Finding> findings =
      lintRepo(files, kManifest, {}, strict, &manifestError);
  EXPECT_EQ(manifestError, "");
  return findings;
}

int countRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// --- Tarjan SCC -------------------------------------------------------

TEST(Tarjan, AcyclicChainHasOnlySingletons) {
  // 0 -> 1 -> 2 -> 3, no back edges.
  const std::vector<std::vector<int>> adj = {{1}, {2}, {3}, {}};
  for (const std::vector<int>& scc : tarjanScc(adj)) {
    EXPECT_EQ(scc.size(), 1u);
  }
}

TEST(Tarjan, AcyclicDiamondHasOnlySingletons) {
  // Shared sink reached two ways is still acyclic.
  const std::vector<std::vector<int>> adj = {{1, 2}, {3}, {3}, {}};
  for (const std::vector<int>& scc : tarjanScc(adj)) {
    EXPECT_EQ(scc.size(), 1u);
  }
}

TEST(Tarjan, FindsTheCycleMembersExactly) {
  // 0 -> 1 -> 2 -> 0 is a cycle; 3 hangs off it; 4 is isolated.
  const std::vector<std::vector<int>> adj = {{1}, {2}, {0, 3}, {}, {}};
  std::vector<std::vector<int>> sccs = tarjanScc(adj);
  std::set<int> cycle;
  for (const std::vector<int>& scc : sccs) {
    if (scc.size() > 1) {
      EXPECT_TRUE(cycle.empty()) << "exactly one multi-node SCC expected";
      cycle.insert(scc.begin(), scc.end());
    }
  }
  EXPECT_EQ(cycle, (std::set<int>{0, 1, 2}));
}

TEST(Tarjan, TwoDisjointCyclesAreSeparateComponents) {
  const std::vector<std::vector<int>> adj = {{1}, {0}, {3}, {2}};
  int multi = 0;
  for (const std::vector<int>& scc : tarjanScc(adj)) {
    multi += scc.size() > 1 ? 1 : 0;
  }
  EXPECT_EQ(multi, 2);
}

// --- Witness minimality -----------------------------------------------

TEST(Witness, PicksTheShortestCycleThroughStart) {
  // Two cycles through node 0: 0->1->0 (length 2) and 0->2->3->0
  // (length 3). The witness must be the short one.
  const std::vector<std::vector<int>> adj = {{1, 2}, {0}, {3}, {0}};
  const std::set<int> members = {0, 1, 2, 3};
  const std::vector<int> witness = minimalCycleWitness(adj, members, 0);
  ASSERT_EQ(witness.size(), 3u) << "expected start -> 1 -> start";
  EXPECT_EQ(witness.front(), 0);
  EXPECT_EQ(witness[1], 1);
  EXPECT_EQ(witness.back(), 0);
}

TEST(Witness, EmptyWhenNoCycleThroughStart) {
  const std::vector<std::vector<int>> adj = {{1}, {}};
  EXPECT_TRUE(minimalCycleWitness(adj, {0, 1}, 0).empty());
}

TEST(Witness, RespectsTheMemberRestriction) {
  // The only cycle through 0 leaves the member set, so no witness.
  const std::vector<std::vector<int>> adj = {{1}, {2}, {0}};
  EXPECT_TRUE(minimalCycleWitness(adj, {0, 1}, 0).empty());
}

// --- Manifest parsing --------------------------------------------------

TEST(Manifest, ParsesLayersEdgesAndRoots) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(parseManifest(kManifest, &m, &error)) << error;
  EXPECT_EQ(m.roots, std::vector<std::string>{"src"});
  EXPECT_EQ(m.layerOf("src/pscd/util/rng.h"), "util");
  EXPECT_EQ(m.layerOf("src/pscd/sim/simulator.h"), "sim");
  EXPECT_EQ(m.layerOf("bench/bench_micro.cpp"), "");
  EXPECT_EQ(m.allowedEdges.count({"sim", "util"}), 1u);
}

TEST(Manifest, LongestPrefixWins) {
  Manifest m;
  std::string error;
  ASSERT_TRUE(parseManifest("layer api src/pscd/\n"
                            "layer util src/pscd/util/\n",
                            &m, &error))
      << error;
  EXPECT_EQ(m.layerOf("src/pscd/util/rng.h"), "util");
  EXPECT_EQ(m.layerOf("src/pscd/pscd.h"), "api");
}

TEST(Manifest, UnknownLayerInAllowIsNamed) {
  Manifest m;
  std::string error;
  EXPECT_FALSE(parseManifest("layer util src/pscd/util/\n"
                             "allow util -> nosuch\n",
                             &m, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown layer 'nosuch'"), std::string::npos) << error;
}

TEST(Manifest, DuplicateAllowEdgeIsNamed) {
  Manifest m;
  std::string error;
  EXPECT_FALSE(parseManifest("layer a x/\nlayer b y/\n"
                             "allow a -> b\nallow a -> b\n",
                             &m, &error));
  EXPECT_NE(error.find("duplicate allow edge 'a -> b'"), std::string::npos)
      << error;
}

TEST(Manifest, DuplicateLayerIsNamed) {
  Manifest m;
  std::string error;
  EXPECT_FALSE(parseManifest("layer a x/\nlayer a y/\n", &m, &error));
  EXPECT_NE(error.find("duplicate layer 'a'"), std::string::npos) << error;
}

TEST(Manifest, MalformedLineIsNamed) {
  Manifest m;
  std::string error;
  EXPECT_FALSE(parseManifest("layer\n", &m, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
}

TEST(Manifest, DriverExitsTwoOnBadManifest) {
  const std::string manifest =
      writeTemp("pscd_lint_bad_manifest.txt",
                "layer util src/pscd/util/\nallow util -> nosuch\n");
  const std::string file =
      writeTemp("pscd_lint_manifest_victim.cpp", "int x = 0;\n");
  std::ostringstream out, err;
  const int code = runLint({"--manifest", manifest, file}, out, err);
  EXPECT_EQ(code, 2);
  EXPECT_NE(err.str().find("unknown layer 'nosuch'"), std::string::npos)
      << err.str();
}

TEST(Manifest, DriverExitsTwoOnMissingManifestFile) {
  const std::string file =
      writeTemp("pscd_lint_manifest_victim2.cpp", "int x = 0;\n");
  std::ostringstream out, err;
  const int code =
      runLint({"--manifest", "/nonexistent/layers.txt", file}, out, err);
  EXPECT_EQ(code, 2);
}

// --- Include resolution / normalization -------------------------------

TEST(Resolve, QuoteAndAngleFormsOfPscdPathsAreOneNode) {
  const std::set<std::string> known = {"src/pscd/util/rng.h"};
  const std::vector<std::string> roots = {"src"};
  EXPECT_EQ(resolveInclude("src/pscd/sim/simulator.cpp", "pscd/util/rng.h",
                           /*angle=*/false, roots, known),
            "src/pscd/util/rng.h");
  EXPECT_EQ(resolveInclude("src/pscd/sim/simulator.cpp", "pscd/util/rng.h",
                           /*angle=*/true, roots, known),
            "src/pscd/util/rng.h");
}

TEST(Resolve, SystemHeadersResolveToNothing) {
  EXPECT_EQ(resolveInclude("src/pscd/util/rng.cpp", "vector", /*angle=*/true,
                           {"src"}, {}),
            "");
}

TEST(Resolve, NormalizeDotsCollapsesSegments) {
  EXPECT_EQ(normalizeDots("a/./b/../c.h"), "a/c.h");
  EXPECT_EQ(normalizeDots("./x.h"), "x.h");
}

// --- The arch rules end-to-end through lintRepo -----------------------

TEST(ArchRules, LayerViolationFiresAndAllowSuppresses) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/clock_user.cpp",
       "#include \"pscd/sim/simulator.h\"\nint x = 0;\n"},
  };
  std::vector<Finding> findings = lintMemoryRepo(repo);
  EXPECT_EQ(countRule(findings, "layer-violation"), 1);

  const std::vector<MemoryFile> suppressed = {
      {"src/pscd/util/clock_user.cpp",
       "#include \"pscd/sim/simulator.h\"  // pscd-lint: allow("
       "layer-violation) justified back-edge\nint x = 0;\n"},
  };
  // Strict mode also proves the allow() is counted as used.
  std::vector<Finding> clean = lintMemoryRepo(suppressed, /*strict=*/true);
  EXPECT_EQ(countRule(clean, "layer-violation"), 0);
  EXPECT_EQ(countRule(clean, "lint-directive"), 0);
}

TEST(ArchRules, ForbidReachReportsTransitiveChains) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/a.h", "#include \"pscd/util/b.h\"\nusing B2 = B;\n"},
      {"src/pscd/util/b.h",
       "#include \"pscd/sim/ev.h\"  // pscd-lint: allow(layer-violation) test\n"
       "using B = Ev;\n"},
      {"src/pscd/sim/ev.h", "struct Ev {};\n"},
  };
  std::string manifestError;
  std::vector<Finding> findings =
      lintRepo(repo, kManifest, {{"util", "sim"}}, false, &manifestError);
  ASSERT_EQ(manifestError, "");
  // a.h reaches sim through b.h (reported), and b.h's own direct edge
  // was suppressed with a rationale — exactly the policy for
  // intentional back-edges.
  ASSERT_GE(countRule(findings, "layer-violation"), 1);
  bool sawChain = false;
  for (const Finding& f : findings) {
    if (f.rule == "layer-violation" && f.path == "src/pscd/util/a.h") {
      sawChain = f.message.find("transitively includes") != std::string::npos;
    }
  }
  EXPECT_TRUE(sawChain);
}

TEST(ArchRules, IncludeCycleReportedOnceAtSmallestMember) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/a.h", "#include \"pscd/util/b.h\"\nstruct A { B* b; };\n"},
      {"src/pscd/util/b.h", "#include \"pscd/util/a.h\"\nstruct B { A* a; };\n"},
  };
  std::vector<Finding> findings = lintMemoryRepo(repo);
  ASSERT_EQ(countRule(findings, "include-cycle"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "include-cycle") {
      EXPECT_EQ(f.path, "src/pscd/util/a.h");
      EXPECT_NE(f.message.find("2 files"), std::string::npos) << f.message;
    }
  }
}

TEST(ArchRules, UnusedIncludeFiresOnUnreferencedHeader) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/consumer.cpp",
       "#include \"pscd/util/dep.h\"\nint unrelated() { return 1; }\n"},
      {"src/pscd/util/dep.h", "struct Dep {};\n"},
  };
  EXPECT_EQ(countRule(lintMemoryRepo(repo), "unused-include"), 1);
}

TEST(ArchRules, UnusedIncludeStaysQuietWhenAnySymbolIsUsed) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/consumer.cpp",
       "#include \"pscd/util/dep.h\"\nDep makeDep() { return Dep{}; }\n"},
      {"src/pscd/util/dep.h", "struct Dep {};\n"},
  };
  EXPECT_EQ(countRule(lintMemoryRepo(repo), "unused-include"), 0);
}

TEST(ArchRules, UnusedIncludeNoFireOnMacroOnlyHeaders) {
  // check.h / hot.h / thread_annotations.h define macros the token
  // stream cannot witness; including them "unused" must stay silent.
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/check.h",
       "#define PSCD_CHECK(cond) assertImpl(cond)\n"
       "inline void assertImpl(bool) {}\n"},
      {"src/pscd/util/hot.h", "#define PSCD_HOT __attribute__((hot))\n"},
      {"src/pscd/util/thread_annotations.h",
       "#define PSCD_GUARDED_BY(x) __attribute__((guarded_by(x)))\n"},
      {"src/pscd/util/consumer.cpp",
       "#include \"pscd/util/check.h\"\n"
       "#include \"pscd/util/hot.h\"\n"
       "#include \"pscd/util/thread_annotations.h\"\n"
       "int f() { PSCD_CHECK(true); return 0; }\n"},
  };
  EXPECT_EQ(countRule(lintMemoryRepo(repo), "unused-include"), 0);
}

TEST(ArchRules, SelfIncludeFirstFiresWhenOwnHeaderIsLate) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/widget.h", "int widgetSize();\n"},
      {"src/pscd/util/widget.cpp",
       "#include \"pscd/util/other.h\"\n"
       "#include \"pscd/util/widget.h\"\n"
       "int widgetSize() { return kOther; }\n"},
      {"src/pscd/util/other.h", "inline constexpr int kOther = 3;\n"},
  };
  EXPECT_EQ(countRule(lintMemoryRepo(repo), "self-include-first"), 1);
}

TEST(ArchRules, SelfIncludeFirstQuietWhenOwnHeaderLeads) {
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/widget.h", "int widgetSize();\n"},
      {"src/pscd/util/widget.cpp",
       "#include \"pscd/util/widget.h\"\nint widgetSize() { return 4; }\n"},
  };
  EXPECT_EQ(countRule(lintMemoryRepo(repo), "self-include-first"), 0);
}

TEST(ArchRules, DirectiveOnIncludeLineTargetsThatLine) {
  // The lexer historically dropped preprocessor lines from the token
  // stream; suppression directives must nevertheless bind to include
  // lines, or none of the architecture rules would be suppressible.
  const std::vector<MemoryFile> repo = {
      {"src/pscd/util/consumer.cpp",
       "#include \"pscd/util/dep.h\"  // pscd-lint: allow(unused-include) "
       "re-export\nint unrelated() { return 1; }\n"},
      {"src/pscd/util/dep.h", "struct Dep {};\n"},
  };
  std::vector<Finding> findings = lintMemoryRepo(repo, /*strict=*/true);
  EXPECT_EQ(countRule(findings, "unused-include"), 0);
  EXPECT_EQ(countRule(findings, "lint-directive"), 0);
}

}  // namespace
}  // namespace pscd_lint
