// Failure-layer tests: engine-level recovery semantics (push loss,
// retry, degraded stale serving, publisher failover, cold vs warm
// restart), the cachedVersion probe across every strategy, the
// simulator's fault integration (zero-fault bit-identity, availability
// degradation, seed reproducibility), and the satellite SimConfig range
// validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pscd/cache/strategy_factory.h"
#include "pscd/core/engine.h"
#include "pscd/sim/simulator.h"
#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"
#include "pscd/workload/workload.h"

namespace pscd {
namespace {

constexpr StrategyKind kAllKinds[] = {
    StrategyKind::kGDStar, StrategyKind::kSUB,  StrategyKind::kSG1,
    StrategyKind::kSG2,    StrategyKind::kSR,   StrategyKind::kDM,
    StrategyKind::kDCFP,   StrategyKind::kDCAP, StrategyKind::kDCLAP,
    StrategyKind::kLRU,    StrategyKind::kGDS,  StrategyKind::kLFUDA,
};

// ------------------------------------------------- cachedVersion probe --

TEST(CachedVersionProbe, AgreesWithStoreStateForEveryStrategy) {
  for (const StrategyKind kind : kAllKinds) {
    StrategyParams sp;
    sp.capacity = 10000;
    sp.fetchCost = 1.0;
    const auto strat = makeStrategy(kind, sp);
    SCOPED_TRACE(strat->name());
    EXPECT_FALSE(strat->cachedVersion(1).has_value());
    // Store page 1 at version 2 through whichever path the strategy
    // supports (push for push-capable, request otherwise) and check the
    // probe against the outcome the strategy itself reported.
    bool stored = false;
    if (strat->pushCapable()) {
      PushContext push;
      push.page = 1;
      push.version = 2;
      push.size = 100;
      push.subCount = 3;
      push.now = 10.0;
      stored = strat->onPush(push).stored;
    }
    RequestContext req;
    req.page = 1;
    req.latestVersion = 2;
    req.size = 100;
    req.subCount = 3;
    req.now = 20.0;
    const RequestOutcome out = strat->onRequest(req);
    EXPECT_EQ(out.hit, stored);  // a stored push copy must serve the hit
    stored = stored || out.storedAfterMiss;
    ASSERT_TRUE(stored);  // an empty 10 KB cache has no reason to refuse
    const std::optional<Version> cached = strat->cachedVersion(1);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, 2u);
    EXPECT_FALSE(strat->cachedVersion(99).has_value());
    // The probe must not mutate anything: repeated probes agree and the
    // strategy still passes its own invariants.
    EXPECT_EQ(strat->cachedVersion(1), cached);
    EXPECT_NO_THROW(strat->checkInvariants());
  }
}

// ------------------------------------------------------ engine faults --

class EngineFaultTest : public ::testing::Test {
 protected:
  EngineFaultTest() : rng_(11), network_(makeParams(), rng_) {}

  static NetworkParams makeParams() {
    return NetworkParams{.numProxies = 3, .numTransitNodes = 2};
  }

  ContentDistributionEngine makeEngine(
      StrategyKind kind = StrategyKind::kSG2,
      PushScheme scheme = PushScheme::kAlwaysPushing) {
    EngineConfig ec;
    ec.strategy = kind;
    ec.pushScheme = scheme;
    ec.proxyCapacities = {100000, 100000, 100000};
    return ContentDistributionEngine(network_, std::move(ec));
  }

  /// Publishes `page` at `version` with a subscription at every proxy.
  static PublishSummary publishAll(ContentDistributionEngine& engine,
                                   PageId page, Version version,
                                   const PushFaults* faults = nullptr) {
    PublishEvent ev;
    ev.time = 1.0;
    ev.page = page;
    ev.version = version;
    ev.size = 500;
    return engine.publish(ev, faults);
  }

  Rng rng_;
  Network network_;
};

TEST_F(EngineFaultTest, LostPushesAreAccountedUnderAlwaysPushing) {
  auto engine = makeEngine(StrategyKind::kSG2, PushScheme::kAlwaysPushing);
  for (ProxyId p = 0; p < 3; ++p) {
    engine.broker().subscribeAggregated(p, 7, 1);
  }
  PushFaults faults;
  faults.lost = [](ProxyId) { return true; };
  const PublishSummary s = publishAll(engine, 7, 0, &faults);
  EXPECT_EQ(s.proxiesNotified, 3u);
  EXPECT_EQ(s.proxiesStored, 0u);
  EXPECT_EQ(s.pagesTransferred, 0u);
  EXPECT_EQ(s.bytesTransferred, 0u);
  EXPECT_EQ(s.pagesLost, 3u);
  EXPECT_EQ(s.bytesLost, 1500u);
  for (ProxyId p = 0; p < 3; ++p) {
    EXPECT_FALSE(engine.strategy(p).cachedVersion(7).has_value());
  }
}

TEST_F(EngineFaultTest, LostPushesCostNothingUnderPushingWhenNecessary) {
  auto engine =
      makeEngine(StrategyKind::kSG2, PushScheme::kPushingWhenNecessary);
  for (ProxyId p = 0; p < 3; ++p) {
    engine.broker().subscribeAggregated(p, 7, 1);
  }
  PushFaults faults;
  faults.lost = [](ProxyId p) { return p != 1; };
  const PublishSummary s = publishAll(engine, 7, 0, &faults);
  // The meta-exchange already failed for proxies 0 and 2, so no bytes
  // were wasted on them; proxy 1 stored normally.
  EXPECT_EQ(s.pagesLost, 0u);
  EXPECT_EQ(s.bytesLost, 0u);
  EXPECT_EQ(s.proxiesStored, 1u);
  EXPECT_TRUE(engine.strategy(1).cachedVersion(7).has_value());
  EXPECT_FALSE(engine.strategy(0).cachedVersion(7).has_value());
}

TEST_F(EngineFaultTest, RetriesThenServesStaleFromCache) {
  auto engine = makeEngine();
  engine.broker().subscribeAggregated(0, 7, 1);
  publishAll(engine, 7, 0);  // proxy 0 stores version 0
  ASSERT_TRUE(engine.strategy(0).cachedVersion(7).has_value());
  PushFaults lostAll;
  lostAll.lost = [](ProxyId) { return true; };
  publishAll(engine, 7, 1, &lostAll);  // version 1 never arrives

  RequestFaults faults;
  faults.maxRetries = 2;
  faults.fetchAttemptFails = [] { return true; };
  const Bytes usedBefore = engine.strategy(0).usedBytes();
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  EXPECT_TRUE(s.servedStale);
  EXPECT_TRUE(s.stale);
  EXPECT_FALSE(s.hit);
  EXPECT_FALSE(s.unavailable);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.bytesTransferred, 0u);
  // Degraded serving bypasses the strategy: no bookkeeping moved.
  EXPECT_EQ(engine.strategy(0).usedBytes(), usedBefore);
  EXPECT_EQ(*engine.strategy(0).cachedVersion(7), 0u);
}

TEST_F(EngineFaultTest, UncachedPageWithFailedFetchIsUnavailable) {
  auto engine = makeEngine();
  publishAll(engine, 7, 0);  // no subscriptions: nothing cached anywhere
  RequestFaults faults;
  faults.maxRetries = 3;
  faults.fetchAttemptFails = [] { return true; };
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  EXPECT_TRUE(s.unavailable);
  EXPECT_FALSE(s.servedStale);
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(s.bytesTransferred, 0u);
}

TEST_F(EngineFaultTest, FreshHitIsImmuneToFetchFailures) {
  auto engine = makeEngine();
  engine.broker().subscribeAggregated(0, 7, 1);
  publishAll(engine, 7, 0);
  RequestFaults faults;
  faults.maxRetries = 2;
  faults.fetchAttemptFails = [] { return true; };
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  EXPECT_TRUE(s.hit);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_FALSE(s.servedStale);
}

TEST_F(EngineFaultTest, DownProxyFailsOverToThePublisher) {
  auto engine = makeEngine();
  engine.broker().subscribeAggregated(0, 7, 1);
  publishAll(engine, 7, 0);
  RequestFaults faults;
  faults.proxyDown = true;
  const Bytes usedBefore = engine.strategy(0).usedBytes();
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  EXPECT_TRUE(s.failover);
  EXPECT_FALSE(s.hit);
  EXPECT_FALSE(s.unavailable);
  EXPECT_EQ(s.bytesTransferred, 500u);
  // The crashed proxy's cache is untouched by the direct fetch.
  EXPECT_EQ(engine.strategy(0).usedBytes(), usedBefore);
}

TEST_F(EngineFaultTest, DownProxyWithoutFailoverIsUnavailable) {
  auto engine = makeEngine();
  publishAll(engine, 7, 0);
  RequestFaults faults;
  faults.proxyDown = true;
  faults.publisherFailover = false;
  faults.maxRetries = 4;
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  EXPECT_TRUE(s.unavailable);
  EXPECT_FALSE(s.failover);
  EXPECT_EQ(s.retries, 0u);
}

TEST_F(EngineFaultTest, PartitionedProxyCannotFetch) {
  auto engine = makeEngine();
  engine.broker().subscribeAggregated(0, 7, 1);
  publishAll(engine, 7, 0);
  PushFaults lostAll;
  lostAll.lost = [](ProxyId) { return true; };
  publishAll(engine, 7, 1, &lostAll);
  RequestFaults faults;
  faults.pathToPublisher = false;
  faults.maxRetries = 3;
  const RequestSummary s = engine.request(0, 7, 2.0, &faults);
  // Every attempt times out without drawing randomness; the stale copy
  // still saves the request.
  EXPECT_TRUE(s.servedStale);
  EXPECT_EQ(s.retries, 3u);
}

TEST_F(EngineFaultTest, ColdRestartWipesTheCacheWarmKeepsIt) {
  auto engine = makeEngine();
  engine.broker().subscribeAggregated(0, 7, 1);
  publishAll(engine, 7, 0);
  ASSERT_GT(engine.strategy(0).usedBytes(), 0u);
  engine.restartProxy(0, /*warm=*/true);
  EXPECT_GT(engine.strategy(0).usedBytes(), 0u);
  EXPECT_TRUE(engine.strategy(0).cachedVersion(7).has_value());
  engine.restartProxy(0, /*warm=*/false);
  EXPECT_EQ(engine.strategy(0).usedBytes(), 0u);
  EXPECT_FALSE(engine.strategy(0).cachedVersion(7).has_value());
  // The rebuilt strategy is fully functional and keeps its capacity.
  EXPECT_EQ(engine.strategy(0).capacityBytes(), 100000u);
  EXPECT_NO_THROW(engine.checkInvariants());
  EXPECT_THROW(engine.restartProxy(9, false), std::out_of_range);
}

// --------------------------------------------------- simulator faults --

WorkloadParams tinyParams(std::uint64_t seed = 3) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 250;
  p.publishing.numUpdatedPages = 100;
  p.publishing.maxVersionsPerPage = 15;
  p.request.totalRequests = 6000;
  p.request.numProxies = 8;
  p.request.minServerPool = 2;
  p.seed = seed;
  return p;
}

class FaultSimTest : public ::testing::Test {
 protected:
  FaultSimTest()
      : workload_(buildWorkload(tinyParams())),
        rng_(9),
        network_(NetworkParams{.numProxies = 8, .numTransitNodes = 4},
                 rng_) {}

  SimMetrics run(const FaultConfig& faults = {},
                 StrategyKind kind = StrategyKind::kSG2) {
    SimConfig c;
    c.strategy = kind;
    c.beta = 2.0;
    c.capacityFraction = 0.05;
    c.faults = faults;
    return Simulator(workload_, network_, c).run();
  }

  static FaultConfig heavyFaults(std::uint64_t seed = 5) {
    FaultConfig fc;
    fc.seed = seed;
    fc.proxyFailuresPerDay = 2.0;
    fc.proxyMeanDowntimeHours = 1.0;
    fc.linkFailuresPerDay = 4.0;
    fc.linkMeanDowntimeHours = 0.5;
    fc.pushLossProbability = 0.05;
    fc.fetchFailureProbability = 0.5;
    fc.retry.maxRetries = 1;
    return fc;
  }

  Workload workload_;
  Rng rng_;
  Network network_;
};

TEST_F(FaultSimTest, DisabledFaultLayerIsBitIdentical) {
  const SimMetrics base = run();
  FaultConfig noFaults;
  noFaults.seed = 999;  // differs from default, but enabled() is false
  noFaults.retry.maxRetries = 7;
  const SimMetrics same = run(noFaults);
  EXPECT_EQ(base.hits(), same.hits());
  EXPECT_EQ(base.requests(), same.requests());
  EXPECT_EQ(base.staleMisses(), same.staleMisses());
  EXPECT_EQ(base.traffic().pushBytes, same.traffic().pushBytes);
  EXPECT_EQ(base.traffic().fetchBytes, same.traffic().fetchBytes);
  EXPECT_EQ(base.meanResponseTime(), same.meanResponseTime());
  // Fault-free runs report a perfect overlay.
  EXPECT_DOUBLE_EQ(base.availability(), 1.0);
  EXPECT_EQ(base.staleServes(), 0u);
  EXPECT_EQ(base.totalRetries(), 0u);
  EXPECT_EQ(base.unavailableRequests(), 0u);
  EXPECT_EQ(base.traffic().lostPushPages, 0u);
}

TEST_F(FaultSimTest, HeavyFaultsDegradeServiceVisibly) {
  const SimMetrics m = run(heavyFaults());
  EXPECT_LT(m.availability(), 1.0);
  EXPECT_GT(m.availability(), 0.5);
  EXPECT_GT(m.staleServes(), 0u);
  EXPECT_GT(m.totalRetries(), 0u);
  EXPECT_GT(m.failovers(), 0u);
  EXPECT_GT(m.unavailableRequests(), 0u);
  EXPECT_GT(m.traffic().lostPushPages, 0u);
  EXPECT_GT(m.unavailabilityWeightedBytes(),
            static_cast<double>(m.traffic().totalBytes()));
  // Backoff latency shows up in the response time of served requests.
  const SimMetrics base = run();
  EXPECT_GT(m.meanResponseTime(), base.meanResponseTime());
}

TEST_F(FaultSimTest, SameFaultSeedReproducesIdenticalMetrics) {
  const SimMetrics a = run(heavyFaults(5));
  const SimMetrics b = run(heavyFaults(5));
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.staleServes(), b.staleServes());
  EXPECT_EQ(a.totalRetries(), b.totalRetries());
  EXPECT_EQ(a.unavailableRequests(), b.unavailableRequests());
  EXPECT_EQ(a.traffic().lostPushBytes, b.traffic().lostPushBytes);
  EXPECT_EQ(a.meanResponseTime(), b.meanResponseTime());
}

TEST_F(FaultSimTest, DifferentFaultSeedChangesTheRun) {
  const SimMetrics a = run(heavyFaults(5));
  const SimMetrics b = run(heavyFaults(6));
  const bool identical = a.hits() == b.hits() &&
                         a.totalRetries() == b.totalRetries() &&
                         a.unavailableRequests() == b.unavailableRequests();
  EXPECT_FALSE(identical);
}

TEST_F(FaultSimTest, WarmRestartRecoversHitRatio) {
  FaultConfig crashes;
  crashes.seed = 5;
  crashes.proxyFailuresPerDay = 6.0;
  crashes.proxyMeanDowntimeHours = 0.5;
  const SimMetrics cold = run(crashes);
  crashes.warmRestart = true;
  const SimMetrics warm = run(crashes);
  // Same crash schedule (same seed), so the only difference is whether
  // caches survive the restart.
  EXPECT_GE(warm.hitRatio(), cold.hitRatio());
  EXPECT_NE(warm.hits(), cold.hits());
}

// ------------------------------------------ SimConfig range validation --

TEST_F(FaultSimTest, RejectsOutOfRangeLatencyAndFractionConfig) {
  const auto expectRejected = [&](void (*mutate)(SimConfig&)) {
    SimConfig c;
    mutate(c);
    EXPECT_THROW(Simulator(workload_, network_, c), CheckFailure);
  };
  expectRejected([](SimConfig& c) { c.localLatencyMs = -1.0; });
  expectRejected([](SimConfig& c) {
    c.localLatencyMs = std::numeric_limits<double>::quiet_NaN();
  });
  expectRejected([](SimConfig& c) { c.remoteLatencyMsPerUnit = -5.0; });
  expectRejected([](SimConfig& c) {
    c.remoteLatencyMsPerUnit = std::numeric_limits<double>::infinity();
  });
  expectRejected([](SimConfig& c) {
    c.capacityFraction = std::numeric_limits<double>::quiet_NaN();
  });
  expectRejected([](SimConfig& c) {
    c.beta = std::numeric_limits<double>::quiet_NaN();
  });
  expectRejected([](SimConfig& c) { c.dcInitialPcFraction = 1.5; });
  expectRejected([](SimConfig& c) { c.dcMinPcFraction = -0.1; });
  expectRejected([](SimConfig& c) {
    c.dcMinPcFraction = 0.6;
    c.dcMaxPcFraction = 0.4;
    c.dcInitialPcFraction = 0.5;
  });
  expectRejected([](SimConfig& c) { c.faults.pushLossProbability = 2.0; });
  expectRejected([](SimConfig& c) { c.faults.retry.backoffFactor = 0.0; });
}

TEST_F(FaultSimTest, ExistingInvalidArgumentContractsAreKept) {
  SimConfig c;
  c.capacityFraction = 0.0;
  EXPECT_THROW(Simulator(workload_, network_, c), std::invalid_argument);
  c.capacityFraction = 1.5;
  EXPECT_THROW(Simulator(workload_, network_, c), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
