// SUB (section 3.2): push-time-only placement, V = f_S c / s, never
// caches on a miss.
#include "pscd/cache/sub_strategy.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

PushContext push(PageId page, Bytes size, std::uint32_t subs,
                 Version version = 0) {
  return PushContext{page, version, size, subs, 0.0};
}

RequestContext req(PageId page, Bytes size, Version latest = 0) {
  return RequestContext{page, latest, size, 0, 0.0};
}

TEST(SubStrategyTest, IsPushCapable) {
  SubStrategy s(100, 1.0);
  EXPECT_TRUE(s.pushCapable());
  EXPECT_EQ(s.name(), "SUB");
}

TEST(SubStrategyTest, PushStoresAndRequestHits) {
  SubStrategy s(100, 1.0);
  EXPECT_TRUE(s.onPush(push(1, 50, 3)).stored);
  const auto out = s.onRequest(req(1, 50));
  EXPECT_TRUE(out.hit);
}

TEST(SubStrategyTest, NeverCachesOnMiss) {
  SubStrategy s(100, 1.0);
  const auto out = s.onRequest(req(9, 10));
  EXPECT_FALSE(out.hit);
  EXPECT_FALSE(out.storedAfterMiss);
  EXPECT_EQ(s.usedBytes(), 0u);
  // Even repeated misses never populate the cache.
  s.onRequest(req(9, 10));
  EXPECT_FALSE(s.onRequest(req(9, 10)).hit);
}

TEST(SubStrategyTest, ValueOrderingBySubscriptionDensity) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 60, 6));   // V = 0.1
  s.onPush(push(2, 40, 20));  // V = 0.5
  // s=30, size=80 -> V = 0.375: only page 1 (0.1) is a candidate;
  // 60 freed < 80 needed -> refused.
  EXPECT_FALSE(s.onPush(push(3, 80, 30)).stored);
  // s=50, size=80 -> V = 0.625 beats both -> stored.
  EXPECT_TRUE(s.onPush(push(3, 80, 50)).stored);
  EXPECT_FALSE(s.cache().contains(1));
  EXPECT_FALSE(s.cache().contains(2));
}

TEST(SubStrategyTest, RefusalLeavesCacheUntouched) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 50, 10));
  s.onPush(push(2, 50, 10));
  EXPECT_FALSE(s.onPush(push(3, 60, 1)).stored);
  EXPECT_TRUE(s.cache().contains(1));
  EXPECT_TRUE(s.cache().contains(2));
  s.checkInvariants();
}

TEST(SubStrategyTest, VersionPushRefreshesContent) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 50, 3, 0));
  s.onPush(push(1, 70, 3, 2));
  EXPECT_EQ(s.cache().find(1)->version, 2u);
  EXPECT_EQ(s.usedBytes(), 70u);
  EXPECT_TRUE(s.onRequest(req(1, 70, 2)).hit);
}

TEST(SubStrategyTest, StaleCopyIsMissButStays) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 50, 3, 0));
  const auto out = s.onRequest(req(1, 50, 5));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  // SUB does not react to accesses: the stale copy waits for the next
  // push to refresh it.
  EXPECT_TRUE(s.cache().contains(1));
  EXPECT_EQ(s.cache().find(1)->version, 0u);
}

TEST(SubStrategyTest, HitDoesNotChangeValue) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 50, 4));
  const double v = s.cache().find(1)->value;
  s.onRequest(req(1, 50));
  s.onRequest(req(1, 50));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, v);
}

TEST(SubStrategyTest, ZeroSubscriptionPushHasZeroValue) {
  SubStrategy s(100, 1.0);
  s.onPush(push(1, 50, 5));
  s.onPush(push(2, 50, 5));
  // A page with no subscriptions cannot displace anything.
  EXPECT_FALSE(s.onPush(push(3, 10, 0)).stored);
}

TEST(SubStrategyTest, RejectsBadFetchCost) {
  EXPECT_THROW(SubStrategy(100, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
