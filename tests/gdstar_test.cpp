// Conformance tests of the GD* baseline against the paper's pseudo-code
// (section 3.1): V(p) = L + (f(p) c(p)/s(p))^(1/beta), always-admit on
// miss, L set to the value of the page evicted last, In-Cache frequency
// counting, and staleness handling for modified pages.
#include "pscd/cache/gds_family.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pscd {
namespace {

PushContext push(PageId page, Bytes size, std::uint32_t subs,
                 Version version = 0, SimTime now = 0.0) {
  return PushContext{page, version, size, subs, now};
}

RequestContext req(PageId page, Bytes size, Version latest = 0,
                   SimTime now = 0.0, std::uint32_t subs = 0) {
  return RequestContext{page, latest, size, subs, now};
}

TEST(GdStarTest, NotPushCapable) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  EXPECT_FALSE(s.pushCapable());
  EXPECT_FALSE(s.onPush(push(1, 10, 5)).stored);
  EXPECT_EQ(s.usedBytes(), 0u);
}

TEST(GdStarTest, MissAlwaysAdmits) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  const auto out = s.onRequest(req(1, 60));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_EQ(s.usedBytes(), 60u);
}

TEST(GdStarTest, SecondRequestHits) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  s.onRequest(req(1, 60));
  const auto out = s.onRequest(req(1, 60));
  EXPECT_TRUE(out.hit);
}

TEST(GdStarTest, OversizedPageNotCached) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  const auto out = s.onRequest(req(1, 150));
  EXPECT_FALSE(out.hit);
  EXPECT_FALSE(out.storedAfterMiss);
  EXPECT_EQ(s.usedBytes(), 0u);
}

TEST(GdStarTest, EvictsLeastValuablePage) {
  // beta=1, c=1: V = L + f/size. Page 1 (size 50, 1 access) has lower
  // value than page 2 (size 10, 1 access); inserting page 3 (50 bytes)
  // into the full 100-byte cache must evict page 1.
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  s.onRequest(req(1, 50));
  s.onRequest(req(2, 10));
  s.onRequest(req(3, 50));
  EXPECT_FALSE(s.cache().contains(1));
  EXPECT_TRUE(s.cache().contains(2));
  EXPECT_TRUE(s.cache().contains(3));
}

TEST(GdStarTest, InflationSetToLastEvictedValue) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  EXPECT_DOUBLE_EQ(s.inflation(), 0.0);
  s.onRequest(req(1, 100));  // V = 0 + 1/100 = 0.01
  s.onRequest(req(2, 100));  // evicts page 1 -> L = 0.01
  EXPECT_DOUBLE_EQ(s.inflation(), 0.01);
  // Page 2's value built on the new L: V = 0.01 + 1/100.
  EXPECT_DOUBLE_EQ(s.cache().find(2)->value, 0.02);
}

TEST(GdStarTest, FrequencyRaisesValueOnHit) {
  GdsFamilyStrategy s(1000, 1.0, gdStarConfig(1.0));
  s.onRequest(req(1, 100));
  const double v1 = s.cache().find(1)->value;
  s.onRequest(req(1, 100));
  const double v2 = s.cache().find(1)->value;
  EXPECT_DOUBLE_EQ(v1, 0.01);
  EXPECT_DOUBLE_EQ(v2, 0.02);  // f = 2 now
}

TEST(GdStarTest, BetaCompressesUtility) {
  // beta = 2: V = L + sqrt(f c / s).
  GdsFamilyStrategy s(1000, 1.0, gdStarConfig(2.0));
  s.onRequest(req(1, 100));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, std::sqrt(0.01));
}

TEST(GdStarTest, FetchCostScalesValue) {
  GdsFamilyStrategy s(1000, 4.0, gdStarConfig(1.0));
  s.onRequest(req(1, 100));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 0.04);
}

TEST(GdStarTest, InCacheCountingDiscardsFrequencyOnEviction) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(1.0));
  s.onRequest(req(1, 100));
  s.onRequest(req(1, 100));
  s.onRequest(req(1, 100));  // f(1) = 3
  s.onRequest(req(2, 100));  // evicts page 1
  s.onRequest(req(1, 100));  // page 1 returns with f = 1
  EXPECT_EQ(s.cache().find(1)->accessCount, 1u);
}

TEST(GdStarTest, StaleVersionIsMissAndRefreshed) {
  GdsFamilyStrategy s(1000, 1.0, gdStarConfig(1.0));
  s.onRequest(req(1, 100, 0));
  const auto out = s.onRequest(req(1, 100, 3));  // publisher has v3
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_EQ(s.cache().find(1)->version, 3u);
  // Access history survives the refresh (same page, new content).
  EXPECT_EQ(s.cache().find(1)->accessCount, 2u);
}

TEST(GdStarTest, InvariantsHoldThroughChurn) {
  GdsFamilyStrategy s(500, 1.0, gdStarConfig(2.0));
  for (PageId p = 0; p < 200; ++p) {
    s.onRequest(req(p % 17, 30 + (p % 7) * 20, p % 3));
    s.checkInvariants();
  }
  EXPECT_LE(s.usedBytes(), s.capacityBytes());
}

TEST(GdStarTest, RejectsBadConstruction) {
  EXPECT_THROW(GdsFamilyStrategy(100, 1.0, gdStarConfig(0.0)),
               std::invalid_argument);
  EXPECT_THROW(GdsFamilyStrategy(100, 0.0, gdStarConfig(1.0)),
               std::invalid_argument);
}

TEST(GdsBaselineTest, GdsIgnoresFrequency) {
  // GDS: f = 1 constant, so a hit must not change the value.
  GdsFamilyStrategy s(1000, 1.0, gdsConfig());
  s.onRequest(req(1, 100));
  const double v1 = s.cache().find(1)->value;
  s.onRequest(req(1, 100));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, v1);
}

TEST(GdsBaselineTest, LfuDaIgnoresCostAndSize) {
  // LFU-DA: V = L + f regardless of size or cost.
  GdsFamilyStrategy s(1000, 3.0, lfuDaConfig());
  s.onRequest(req(1, 100));
  s.onRequest(req(2, 500));
  EXPECT_DOUBLE_EQ(s.cache().find(1)->value, 1.0);
  EXPECT_DOUBLE_EQ(s.cache().find(2)->value, 1.0);
}

}  // namespace
}  // namespace pscd
