#include "pscd/cache/value_cache.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

CacheEntry entry(PageId page, Bytes size, Version version = 0) {
  CacheEntry e;
  e.page = page;
  e.size = size;
  e.version = version;
  return e;
}

TEST(ValueCacheTest, InsertAndFind) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 40), 5.0);
  EXPECT_TRUE(c.contains(1));
  ASSERT_NE(c.find(1), nullptr);
  EXPECT_EQ(c.find(1)->size, 40u);
  EXPECT_DOUBLE_EQ(c.find(1)->value, 5.0);
  EXPECT_EQ(c.used(), 40u);
  EXPECT_EQ(c.free(), 60u);
  EXPECT_EQ(c.size(), 1u);
  c.checkInvariants();
}

TEST(ValueCacheTest, InsertNoEvictRequiresRoom) {
  ValueCache c(50);
  c.insertNoEvict(entry(1, 40), 1.0);
  EXPECT_THROW(c.insertNoEvict(entry(2, 20), 1.0), std::logic_error);
}

TEST(ValueCacheTest, DuplicateInsertRejected) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 10), 1.0);
  EXPECT_THROW(c.insertNoEvict(entry(1, 10), 2.0), std::logic_error);
}

TEST(ValueCacheTest, EvictForRemovesLowestFirst) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 40), 1.0);
  c.insertNoEvict(entry(2, 40), 2.0);
  c.insertNoEvict(entry(3, 20), 3.0);
  const auto evicted = c.evictFor(50);
  ASSERT_TRUE(evicted.has_value());
  ASSERT_EQ(evicted->size(), 2u);
  EXPECT_EQ((*evicted)[0].page, 1u);
  EXPECT_EQ((*evicted)[1].page, 2u);
  EXPECT_EQ(c.free(), 80u);
  c.checkInvariants();
}

TEST(ValueCacheTest, EvictForNoopWhenRoomExists) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 10), 1.0);
  const auto evicted = c.evictFor(80);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->empty());
}

TEST(ValueCacheTest, EvictForRefusesOversizedPage) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 50), 1.0);
  EXPECT_FALSE(c.evictFor(150).has_value());
  EXPECT_TRUE(c.contains(1));  // nothing evicted
}

TEST(ValueCacheTest, TryEvictLowerThanOnlyTakesCandidates) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 40), 1.0);
  c.insertNoEvict(entry(2, 40), 5.0);
  // Value 3.0: only page 1 is a candidate; freeing 40 + 20 free = 60.
  const auto ok = c.tryEvictLowerThan(3.0, 60);
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].page, 1u);
  EXPECT_TRUE(c.contains(2));
}

TEST(ValueCacheTest, TryEvictLowerThanRefusesWhenInfeasible) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 50), 1.0);
  c.insertNoEvict(entry(2, 50), 5.0);
  // Need 80 but only page 1 (50) is below value 2.0: refuse, evict none.
  EXPECT_FALSE(c.tryEvictLowerThan(2.0, 80).has_value());
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(ValueCacheTest, TryEvictEqualValueIsNotCandidate) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 60), 2.0);
  c.insertNoEvict(entry(2, 40), 3.0);
  // Strictly lower than 2.0 required: page 1 not a candidate.
  EXPECT_FALSE(c.tryEvictLowerThan(2.0, 50).has_value());
}

TEST(ValueCacheTest, TryEvictSucceedsWithFreeSpaceOnly) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 30), 9.0);
  const auto ok = c.tryEvictLowerThan(0.5, 70);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->empty());
}

TEST(ValueCacheTest, EraseReturnsEntry) {
  ValueCache c(100);
  c.insertNoEvict(entry(4, 25), 7.0);
  const auto removed = c.erase(4);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->page, 4u);
  EXPECT_EQ(c.used(), 0u);
  EXPECT_FALSE(c.erase(4).has_value());
  c.checkInvariants();
}

TEST(ValueCacheTest, UpdateValueReorders) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 40), 1.0);
  c.insertNoEvict(entry(2, 40), 2.0);
  c.updateValue(1, 10.0);
  const auto evicted = c.evictFor(30);
  ASSERT_TRUE(evicted.has_value());
  ASSERT_EQ(evicted->size(), 1u);
  EXPECT_EQ((*evicted)[0].page, 2u);  // page 2 is now the lowest
  EXPECT_THROW(c.updateValue(99, 1.0), std::out_of_range);
}

TEST(ValueCacheTest, RecordAccessBumpsCounters) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 10), 1.0);
  const auto& e = c.recordAccess(1, 42.0);
  EXPECT_EQ(e.accessCount, 1u);
  EXPECT_DOUBLE_EQ(e.lastAccess, 42.0);
  c.recordAccess(1, 50.0);
  EXPECT_EQ(c.find(1)->accessCount, 2u);
  EXPECT_THROW(c.recordAccess(2, 0.0), std::out_of_range);
}

TEST(ValueCacheTest, MinValue) {
  ValueCache c(100);
  EXPECT_THROW(c.minValue(), std::logic_error);
  c.insertNoEvict(entry(1, 10), 3.0);
  c.insertNoEvict(entry(2, 10), 1.5);
  EXPECT_DOUBLE_EQ(c.minValue(), 1.5);
}

TEST(ValueCacheTest, SetCapacityGuards) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 60), 1.0);
  EXPECT_THROW(c.setCapacity(50), std::invalid_argument);
  c.setCapacity(60);
  EXPECT_EQ(c.free(), 0u);
  c.setCapacity(200);
  EXPECT_EQ(c.free(), 140u);
}

TEST(ValueCacheTest, ForEachByValueAscendsAndStops) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 10), 3.0);
  c.insertNoEvict(entry(2, 10), 1.0);
  c.insertNoEvict(entry(3, 10), 2.0);
  std::vector<PageId> order;
  c.forEachByValue([&](const ValueCache::StoredEntry& e) {
    order.push_back(e.page);
    return order.size() < 2;
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
}

TEST(ValueCacheTest, TiedValuesBothEvictable) {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 50), 1.0);
  c.insertNoEvict(entry(2, 50), 1.0);
  const auto evicted = c.evictFor(100);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->size(), 2u);
}

}  // namespace
}  // namespace pscd
