#include "pscd/core/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "pscd/topology/network.h"
#include "pscd/util/check.h"
#include "pscd/util/rng.h"

namespace pscd {
namespace {

Network smallNetwork(std::uint64_t seed = 9) {
  Rng rng(seed);
  return Network(NetworkParams{.numProxies = 8, .numTransitNodes = 4}, rng);
}

FaultConfig activeConfig() {
  FaultConfig fc;
  fc.seed = 77;
  fc.proxyFailuresPerDay = 2.0;
  fc.proxyMeanDowntimeHours = 1.0;
  fc.linkFailuresPerDay = 3.0;
  fc.linkMeanDowntimeHours = 0.5;
  return fc;
}

constexpr SimTime kHorizon = 7 * kDay;

TEST(RetryPolicy, BackoffIsExponentialInTheAttempt) {
  RetryPolicy rp;
  rp.backoffBaseMs = 50.0;
  rp.backoffFactor = 2.0;
  EXPECT_DOUBLE_EQ(rp.backoffMs(0), 50.0);
  EXPECT_DOUBLE_EQ(rp.backoffMs(1), 100.0);
  EXPECT_DOUBLE_EQ(rp.backoffMs(2), 200.0);
  EXPECT_DOUBLE_EQ(rp.totalBackoffMs(0), 0.0);
  EXPECT_DOUBLE_EQ(rp.totalBackoffMs(3), 350.0);
}

TEST(RetryPolicy, ValidateRejectsBadParameters) {
  RetryPolicy rp;
  rp.maxRetries = 65;
  EXPECT_THROW(rp.validate(), CheckFailure);
  rp = RetryPolicy{};
  rp.backoffBaseMs = -1.0;
  EXPECT_THROW(rp.validate(), CheckFailure);
  rp = RetryPolicy{};
  rp.backoffFactor = 0.5;
  EXPECT_THROW(rp.validate(), CheckFailure);
  EXPECT_NO_THROW(RetryPolicy{}.validate());
}

TEST(FaultConfig, DefaultIsDisabledAndValid) {
  const FaultConfig fc;
  EXPECT_FALSE(fc.enabled());
  EXPECT_NO_THROW(fc.validate());
}

TEST(FaultConfig, AnyFailureProcessEnables) {
  FaultConfig fc;
  fc.proxyFailuresPerDay = 0.1;
  EXPECT_TRUE(fc.enabled());
  fc = FaultConfig{};
  fc.linkFailuresPerDay = 0.1;
  EXPECT_TRUE(fc.enabled());
  fc = FaultConfig{};
  fc.pushLossProbability = 0.1;
  EXPECT_TRUE(fc.enabled());
  fc = FaultConfig{};
  fc.fetchFailureProbability = 0.1;
  EXPECT_TRUE(fc.enabled());
}

TEST(FaultConfig, ValidateRejectsOutOfRangeParameters) {
  FaultConfig fc;
  fc.proxyFailuresPerDay = -1.0;
  EXPECT_THROW(fc.validate(), CheckFailure);
  fc = FaultConfig{};
  fc.proxyMeanDowntimeHours = 0.0;
  EXPECT_THROW(fc.validate(), CheckFailure);
  fc = FaultConfig{};
  fc.pushLossProbability = 1.5;
  EXPECT_THROW(fc.validate(), CheckFailure);
  fc = FaultConfig{};
  fc.fetchFailureProbability =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(fc.validate(), CheckFailure);
  fc = FaultConfig{};
  fc.retry.backoffFactor = std::numeric_limits<double>::infinity();
  EXPECT_THROW(fc.validate(), CheckFailure);
}

TEST(FaultPlan, DisabledConfigYieldsEmptyPlan) {
  const Network n = smallNetwork();
  const FaultPlan plan = buildFaultPlan(FaultConfig{}, n, kHorizon);
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.checkInvariants(n));
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const Network n = smallNetwork();
  const FaultPlan a = buildFaultPlan(activeConfig(), n, kHorizon);
  const FaultPlan b = buildFaultPlan(activeConfig(), n, kHorizon);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].proxy, b.events[i].proxy);
    EXPECT_EQ(a.events[i].linkA, b.events[i].linkA);
    EXPECT_EQ(a.events[i].linkB, b.events[i].linkB);
  }
}

TEST(FaultPlan, DifferentSeedDifferentSchedule) {
  const Network n = smallNetwork();
  FaultConfig other = activeConfig();
  other.seed = 78;
  const FaultPlan a = buildFaultPlan(activeConfig(), n, kHorizon);
  const FaultPlan b = buildFaultPlan(other, n, kHorizon);
  const bool identical =
      a.events.size() == b.events.size() &&
      std::equal(a.events.begin(), a.events.end(), b.events.begin(),
                 [](const FaultEvent& x, const FaultEvent& y) {
                   return x.time == y.time && x.kind == y.kind;
                 });
  EXPECT_FALSE(identical);
}

TEST(FaultPlan, ProxyStreamIndependentOfLinkProcess) {
  // Per-entity seed streams: enabling the link process must not perturb
  // the proxy schedule (and vice versa), so sweeps stay comparable.
  const Network n = smallNetwork();
  FaultConfig proxyOnly = activeConfig();
  proxyOnly.linkFailuresPerDay = 0.0;
  const FaultPlan a = buildFaultPlan(proxyOnly, n, kHorizon);
  const FaultPlan full = buildFaultPlan(activeConfig(), n, kHorizon);
  std::vector<FaultEvent> proxyEvents;
  for (const FaultEvent& ev : full.events) {
    if (ev.kind == FaultEventKind::kProxyDown ||
        ev.kind == FaultEventKind::kProxyUp) {
      proxyEvents.push_back(ev);
    }
  }
  ASSERT_EQ(a.events.size(), proxyEvents.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, proxyEvents[i].time);
    EXPECT_EQ(a.events[i].proxy, proxyEvents[i].proxy);
    EXPECT_EQ(a.events[i].kind, proxyEvents[i].kind);
  }
}

TEST(FaultPlan, ScheduleIsSortedPairedAndInsideHorizon) {
  const Network n = smallNetwork();
  const FaultPlan plan = buildFaultPlan(activeConfig(), n, kHorizon);
  ASSERT_FALSE(plan.empty());
  EXPECT_NO_THROW(plan.checkInvariants(n));
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].time, plan.events[i].time);
  }
  for (const FaultEvent& ev : plan.events) {
    EXPECT_LT(ev.time, kHorizon);
    if (ev.kind == FaultEventKind::kProxyDown ||
        ev.kind == FaultEventKind::kProxyUp) {
      EXPECT_LT(ev.proxy, n.numProxies());
    } else {
      EXPECT_TRUE(n.graph().hasEdge(ev.linkA, ev.linkB));
      EXPECT_LT(ev.linkA, ev.linkB);
    }
  }
}

TEST(FaultPlan, CheckInvariantsDetectsCorruptSchedules) {
  const Network n = smallNetwork();
  FaultConfig fc = activeConfig();
  fc.linkFailuresPerDay = 0.0;
  const FaultPlan clean = buildFaultPlan(fc, n, kHorizon);
  ASSERT_GE(clean.events.size(), 2u);

  FaultPlan doubled = clean;  // fail an already-failed proxy
  FaultEvent dup = doubled.events.front();
  doubled.events.insert(doubled.events.begin() + 1, dup);
  EXPECT_THROW(doubled.checkInvariants(n), CheckFailure);

  FaultPlan unsorted = clean;  // break the time order
  std::swap(unsorted.events.front().time, unsorted.events.back().time);
  EXPECT_THROW(unsorted.checkInvariants(n), CheckFailure);

  FaultPlan offOverlay = clean;  // proxy id past the overlay
  offOverlay.events.front().proxy = n.numProxies();
  EXPECT_THROW(offOverlay.checkInvariants(n), CheckFailure);
}

TEST(FaultPlan, BuildRejectsInvalidInputs) {
  const Network n = smallNetwork();
  FaultConfig bad = activeConfig();
  bad.proxyMeanDowntimeHours = -2.0;
  EXPECT_THROW(buildFaultPlan(bad, n, kHorizon), CheckFailure);
  EXPECT_THROW(buildFaultPlan(
                   activeConfig(), n,
                   std::numeric_limits<double>::infinity()),
               CheckFailure);
}

}  // namespace
}  // namespace pscd
