// Tests for the shared bench flag/env parsing (bench/bench_common.h):
// explicit flags beat PSCD_BENCH_* environment defaults, which beat the
// builtin defaults, and every invalid input surfaces as kError with a
// printable diagnostic instead of exiting.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.h"

namespace pscd::bench {
namespace {

using EnvMap = std::map<std::string, std::string>;

BenchEnvStatus parse(const std::vector<std::string>& flags, const EnvMap& env,
                     BenchEnv* out, std::string* message,
                     const std::vector<BenchOption>& extraOptions = {},
                     std::map<std::string, std::string>* extraValues = nullptr) {
  std::vector<const char*> argv = {"bench_test"};
  for (const std::string& f : flags) argv.push_back(f.c_str());
  const auto lookup = [&env](const char* name) -> const char* {
    const auto it = env.find(name);
    return it == env.end() ? nullptr : it->second.c_str();
  };
  return tryParseBenchEnv(static_cast<int>(argv.size()), argv.data(),
                          "bench_test", "test driver", lookup, out, message,
                          extraOptions, extraValues);
}

TEST(BenchEnv, BuiltinDefaults) {
  BenchEnv env;
  std::string message;
  ASSERT_EQ(parse({}, {}, &env, &message), BenchEnvStatus::kOk);
  EXPECT_GE(env.jobs, 1u);  // --jobs 0 resolves to hardware concurrency
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
  EXPECT_TRUE(env.csvPath.empty());
}

TEST(BenchEnv, EnvironmentProvidesDefaults) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_JOBS", "2"},
                       {"PSCD_BENCH_SCALE", "0.5"},
                       {"PSCD_BENCH_CSV", "env.csv"}};
  ASSERT_EQ(parse({}, vars, &env, &message), BenchEnvStatus::kOk);
  EXPECT_EQ(env.jobs, 2u);
  EXPECT_DOUBLE_EQ(env.scale, 0.5);
  EXPECT_EQ(env.csvPath, "env.csv");
}

TEST(BenchEnv, FlagsOverrideEnvironment) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_JOBS", "2"},
                       {"PSCD_BENCH_SCALE", "0.5"},
                       {"PSCD_BENCH_CSV", "env.csv"}};
  ASSERT_EQ(parse({"--jobs", "3", "--scale", "0.25", "--csv", "flag.csv"},
                  vars, &env, &message),
            BenchEnvStatus::kOk);
  EXPECT_EQ(env.jobs, 3u);
  EXPECT_DOUBLE_EQ(env.scale, 0.25);
  EXPECT_EQ(env.csvPath, "flag.csv");
}

TEST(BenchEnv, EmptyEnvironmentValueFallsBackToBuiltin) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_SCALE", ""}};
  ASSERT_EQ(parse({}, vars, &env, &message), BenchEnvStatus::kOk);
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
}

TEST(BenchEnv, HelpReturnsHelpText) {
  BenchEnv env;
  std::string message;
  EXPECT_EQ(parse({"--help"}, {}, &env, &message), BenchEnvStatus::kHelp);
  EXPECT_NE(message.find("--jobs"), std::string::npos);
  EXPECT_NE(message.find("--scale"), std::string::npos);
}

TEST(BenchEnv, UnknownFlagIsError) {
  BenchEnv env;
  std::string message;
  EXPECT_EQ(parse({"--frobnicate"}, {}, &env, &message),
            BenchEnvStatus::kError);
  EXPECT_NE(message.find("bench_test:"), std::string::npos);
}

TEST(BenchEnv, OutOfRangeScaleIsError) {
  BenchEnv env;
  std::string message;
  EXPECT_EQ(parse({"--scale", "2"}, {}, &env, &message),
            BenchEnvStatus::kError);
  EXPECT_NE(message.find("--scale"), std::string::npos);
}

TEST(BenchEnv, OutOfRangeScaleFromEnvironmentIsError) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_SCALE", "0"}};
  EXPECT_EQ(parse({}, vars, &env, &message), BenchEnvStatus::kError);
  EXPECT_NE(message.find("--scale"), std::string::npos);
}

TEST(BenchEnv, NegativeJobsFromEnvironmentIsError) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_JOBS", "-1"}};
  EXPECT_EQ(parse({}, vars, &env, &message), BenchEnvStatus::kError);
  EXPECT_NE(message.find("--jobs"), std::string::npos);
}

TEST(BenchEnv, MalformedJobsFromEnvironmentIsErrorNotThrow) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_JOBS", "many"}};
  EXPECT_EQ(parse({}, vars, &env, &message), BenchEnvStatus::kError);
  EXPECT_NE(message.find("--jobs"), std::string::npos);
}

TEST(BenchEnv, ValidFlagBeatsMalformedEnvironment) {
  BenchEnv env;
  std::string message;
  const EnvMap vars = {{"PSCD_BENCH_SCALE", "bogus"}};
  ASSERT_EQ(parse({"--scale", "0.75"}, vars, &env, &message),
            BenchEnvStatus::kOk);
  EXPECT_DOUBLE_EQ(env.scale, 0.75);
}

// ---- bench-specific extra options (the bench_serve machinery) ---------

std::vector<BenchOption> serveLikeOptions() {
  return {{"mode", "closed or open", "closed", "PSCD_BENCH_SERVE_MODE"},
          {"qps", "open-loop target rate", "1000", "PSCD_BENCH_SERVE_QPS"}};
}

TEST(BenchEnv, ExtraOptionBuiltinDefault) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  ASSERT_EQ(parse({}, {}, &env, &message, serveLikeOptions(), &values),
            BenchEnvStatus::kOk);
  EXPECT_EQ(values.at("mode"), "closed");
  EXPECT_EQ(values.at("qps"), "1000");
}

TEST(BenchEnv, ExtraOptionEnvironmentOverridesBuiltin) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  const EnvMap vars = {{"PSCD_BENCH_SERVE_MODE", "open"}};
  ASSERT_EQ(parse({}, vars, &env, &message, serveLikeOptions(), &values),
            BenchEnvStatus::kOk);
  EXPECT_EQ(values.at("mode"), "open");
  EXPECT_EQ(values.at("qps"), "1000");  // untouched option keeps builtin
}

TEST(BenchEnv, ExtraOptionFlagBeatsEnvironment) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  const EnvMap vars = {{"PSCD_BENCH_SERVE_MODE", "open"},
                       {"PSCD_BENCH_SERVE_QPS", "77"}};
  ASSERT_EQ(parse({"--mode", "closed"}, vars, &env, &message,
                  serveLikeOptions(), &values),
            BenchEnvStatus::kOk);
  EXPECT_EQ(values.at("mode"), "closed");  // flag wins
  EXPECT_EQ(values.at("qps"), "77");       // env still beats builtin
}

TEST(BenchEnv, ExtraOptionEmptyEnvironmentFallsBackToBuiltin) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  const EnvMap vars = {{"PSCD_BENCH_SERVE_QPS", ""}};
  ASSERT_EQ(parse({}, vars, &env, &message, serveLikeOptions(), &values),
            BenchEnvStatus::kOk);
  EXPECT_EQ(values.at("qps"), "1000");
}

TEST(BenchEnv, ExtraOptionsAppearInHelpText) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  EXPECT_EQ(parse({"--help"}, {}, &env, &message, serveLikeOptions(), &values),
            BenchEnvStatus::kHelp);
  EXPECT_NE(message.find("--mode"), std::string::npos);
  EXPECT_NE(message.find("--qps"), std::string::npos);
  EXPECT_NE(message.find("--jobs"), std::string::npos);  // shared core kept
}

TEST(BenchEnv, SharedFlagsStillParseAlongsideExtras) {
  BenchEnv env;
  std::string message;
  std::map<std::string, std::string> values;
  ASSERT_EQ(parse({"--scale", "0.5", "--mode", "open"}, {}, &env, &message,
                  serveLikeOptions(), &values),
            BenchEnvStatus::kOk);
  EXPECT_DOUBLE_EQ(env.scale, 0.5);
  EXPECT_EQ(values.at("mode"), "open");
}

}  // namespace
}  // namespace pscd::bench
