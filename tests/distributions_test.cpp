#include "pscd/util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pscd {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution z(100, 1.5);
  double sum = 0.0;
  for (std::uint32_t r = 1; r <= 100; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfFollowsPowerLaw) {
  const ZipfDistribution z(1000, 1.5);
  // pmf(1)/pmf(8) = 8^1.5
  EXPECT_NEAR(z.pmf(1) / z.pmf(8), std::pow(8.0, 1.5), 1e-9);
}

TEST(ZipfTest, SampleInRange) {
  const ZipfDistribution z(50, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto r = z.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 50u);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  const ZipfDistribution z(10, 1.5);
  Rng rng(2);
  std::vector<int> counts(11, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::uint32_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.pmf(r), 0.01);
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const ZipfDistribution z(4, 0.0);
  for (std::uint32_t r = 1; r <= 4; ++r) EXPECT_NEAR(z.pmf(r), 0.25, 1e-12);
}

TEST(ZipfTest, RejectsEmpty) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(LogNormalTest, MeanMatchesFormula) {
  const LogNormalDistribution d(9.357, 1.14804);
  EXPECT_NEAR(d.mean(), std::exp(9.357 + 0.5 * 1.318), 10.0);
  Rng rng(3);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n / d.mean(), 1.0, 0.05);
}

TEST(LogNormalTest, SamplesArePositive) {
  const LogNormalDistribution d(0.0, 2.0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) ASSERT_GT(d.sample(rng), 0.0);
}

TEST(LogNormalTest, RejectsNegativeSigma) {
  EXPECT_THROW(LogNormalDistribution(0.0, -1.0), std::invalid_argument);
}

TEST(StepwiseTest, SamplesRespectSegments) {
  const StepwiseDistribution d({{0.05, 0.0, 1.0},
                                {0.90, 1.0, 24.0},
                                {0.05, 24.0, 72.0}});
  Rng rng(5);
  int low = 0, mid = 0, high = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 72.0);
    if (x < 1.0) {
      ++low;
    } else if (x < 24.0) {
      ++mid;
    } else {
      ++high;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.05, 0.01);
  EXPECT_NEAR(static_cast<double>(mid) / n, 0.90, 0.01);
  EXPECT_NEAR(static_cast<double>(high) / n, 0.05, 0.01);
}

TEST(StepwiseTest, NormalizesWeights) {
  const StepwiseDistribution d({{2.0, 0.0, 1.0}, {2.0, 1.0, 2.0}});
  Rng rng(6);
  int first = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) first += (d.sample(rng) < 1.0);
  EXPECT_NEAR(static_cast<double>(first) / n, 0.5, 0.01);
}

TEST(StepwiseTest, RejectsInvalid) {
  EXPECT_THROW(StepwiseDistribution({}), std::invalid_argument);
  EXPECT_THROW(StepwiseDistribution({{-1.0, 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(StepwiseDistribution({{1.0, 2.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(StepwiseDistribution({{0.0, 0.0, 1.0}}),
               std::invalid_argument);
}

TEST(TruncatedPowerLawTest, CdfBoundaries) {
  const TruncatedPowerLawAge d(2.0, 3600.0, 86400.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(86400.0), 1.0);
  EXPECT_GT(d.cdf(3600.0), 0.0);
  EXPECT_LT(d.cdf(3600.0), 1.0);
}

TEST(TruncatedPowerLawTest, CdfMonotone) {
  const TruncatedPowerLawAge d(1.5, 1000.0, 100000.0);
  double prev = -1.0;
  for (double x = 0; x <= 100000.0; x += 5000.0) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TruncatedPowerLawTest, SamplingMatchesCdf) {
  const TruncatedPowerLawAge d(2.5, 3600.0, 7 * 86400.0);
  Rng rng(7);
  const int n = 100000;
  int below = 0;
  const double q = 7200.0;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 7 * 86400.0);
    below += (x <= q);
  }
  EXPECT_NEAR(static_cast<double>(below) / n, d.cdf(q), 0.01);
}

TEST(TruncatedPowerLawTest, GammaOneUsesLogForm) {
  const TruncatedPowerLawAge d(1.0, 100.0, 10000.0);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 10000.0);
  }
  EXPECT_NEAR(d.cdf(10000.0), 1.0, 1e-12);
}

TEST(TruncatedPowerLawTest, StrongGammaConcentratesEarly) {
  const TruncatedPowerLawAge strong(4.0, 3600.0, 7 * 86400.0);
  const TruncatedPowerLawAge weak(0.5, 3600.0, 7 * 86400.0);
  EXPECT_GT(strong.cdf(3600.0), weak.cdf(3600.0));
}

TEST(TruncatedPowerLawTest, RejectsBadParams) {
  EXPECT_THROW(TruncatedPowerLawAge(2.0, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(TruncatedPowerLawAge(2.0, 10.0, 0.0), std::invalid_argument);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  const DiscreteSampler s(w);
  Rng rng(9);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.01);
  }
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  const std::vector<double> w = {0.0, 1.0, 0.0};
  const DiscreteSampler s(w);
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(s.sample(rng), 1u);
}

TEST(DiscreteSamplerTest, SingleElement) {
  const std::vector<double> w = {5.0};
  const DiscreteSampler s(w);
  Rng rng(11);
  EXPECT_EQ(s.sample(rng), 0u);
}

TEST(DiscreteSamplerTest, RejectsInvalid) {
  EXPECT_THROW(DiscreteSampler(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{-1.0}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pscd
