// Differential test: ValueCache against a deliberately naive reference
// model (linear scans over a vector) under long random operation
// sequences. Any divergence in contents, eviction choice or accounting
// is a bug in the indexed implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "pscd/cache/value_cache.h"
#include "pscd/util/rng.h"

namespace pscd {
namespace {

/// Straight-line re-implementation of the ValueCache contract.
class ReferenceCache {
 public:
  explicit ReferenceCache(Bytes capacity) : capacity_(capacity) {}

  struct Entry {
    PageId page;
    Bytes size;
    double value;
  };

  bool contains(PageId page) const { return find(page) != nullptr; }

  const Entry* find(PageId page) const {
    for (const auto& e : entries_) {
      if (e.page == page) return &e;
    }
    return nullptr;
  }

  Bytes used() const {
    Bytes total = 0;
    for (const auto& e : entries_) total += e.size;
    return total;
  }

  std::optional<std::vector<PageId>> evictFor(Bytes size) {
    if (size > capacity_) return std::nullopt;
    std::vector<PageId> evicted;
    while (capacity_ - used() < size) {
      const auto lowest = std::min_element(
          entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
            if (a.value != b.value) return a.value < b.value;
            return a.page < b.page;  // ties broken like std::set's key
          });
      evicted.push_back(lowest->page);
      entries_.erase(lowest);
    }
    return evicted;
  }

  std::optional<std::vector<PageId>> tryEvictLowerThan(double value,
                                                       Bytes size) {
    Bytes reclaimable = capacity_ - used();
    for (const auto& e : entries_) {
      if (e.value < value) reclaimable += e.size;
    }
    if (reclaimable < size) return std::nullopt;
    std::vector<PageId> evicted;
    while (capacity_ - used() < size) {
      auto lowest = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->value >= value) continue;
        if (lowest == entries_.end() || it->value < lowest->value ||
            (it->value == lowest->value && it->page < lowest->page)) {
          lowest = it;
        }
      }
      evicted.push_back(lowest->page);
      entries_.erase(lowest);
    }
    return evicted;
  }

  void insert(PageId page, Bytes size, double value) {
    entries_.push_back({page, size, value});
  }

  void erase(PageId page) {
    std::erase_if(entries_, [&](const Entry& e) { return e.page == page; });
  }

  void updateValue(PageId page, double value) {
    for (auto& e : entries_) {
      if (e.page == page) e.value = value;
    }
  }

  std::size_t size() const { return entries_.size(); }

 private:
  Bytes capacity_;
  std::vector<Entry> entries_;
};

TEST(ValueCacheModelTest, AgreesWithReferenceUnderRandomOps) {
  Rng rng(2026);
  ValueCache real(1000);
  ReferenceCache model(1000);

  for (int step = 0; step < 20000; ++step) {
    const auto page = static_cast<PageId>(rng.uniformInt(std::uint64_t{40}));
    // Distinct values avoid eviction-order ties between implementations.
    const double value = rng.uniform() + 1e-7 * step;
    const Bytes size = 20 + 10 * rng.uniformInt(std::uint64_t{12});
    switch (rng.uniformInt(std::uint64_t{4})) {
      case 0: {  // force insert (erase first if present)
        real.erase(page);
        model.erase(page);
        const auto evReal = real.evictFor(size);
        const auto evModel = model.evictFor(size);
        ASSERT_EQ(evReal.has_value(), evModel.has_value());
        if (evReal) {
          std::vector<PageId> pagesReal;
          for (const auto& e : *evReal) pagesReal.push_back(e.page);
          ASSERT_EQ(pagesReal, *evModel) << "step " << step;
          real.insertNoEvict({page, 0, size, 0, 0, 0.0}, value);
          model.insert(page, size, value);
        }
        break;
      }
      case 1: {  // admission-based insert
        if (real.contains(page)) break;
        const auto evReal = real.tryEvictLowerThan(value, size);
        const auto evModel = model.tryEvictLowerThan(value, size);
        ASSERT_EQ(evReal.has_value(), evModel.has_value()) << "step " << step;
        if (evReal) {
          std::vector<PageId> pagesReal;
          for (const auto& e : *evReal) pagesReal.push_back(e.page);
          ASSERT_EQ(pagesReal, *evModel);
          real.insertNoEvict({page, 0, size, 0, 0, 0.0}, value);
          model.insert(page, size, value);
        }
        break;
      }
      case 2: {  // erase
        real.erase(page);
        model.erase(page);
        break;
      }
      default: {  // revalue
        if (real.contains(page)) {
          real.updateValue(page, value);
          model.updateValue(page, value);
        }
      }
    }
    ASSERT_EQ(real.size(), model.size()) << "step " << step;
    ASSERT_EQ(real.used(), model.used()) << "step " << step;
    real.checkInvariants();
  }
}

}  // namespace
}  // namespace pscd
