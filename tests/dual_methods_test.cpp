// DM (section 3.3): one shared cache, SUB replacement at push time over
// the subscription values, classic GD* at access time over the access
// values — including the overlap problem the paper describes.
#include "pscd/cache/dual_methods.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

PushContext push(PageId page, Bytes size, std::uint32_t subs,
                 Version version = 0) {
  return PushContext{page, version, size, subs, 0.0};
}

RequestContext req(PageId page, Bytes size, Version latest = 0,
                   std::uint32_t subs = 0) {
  return RequestContext{page, latest, size, subs, 0.0};
}

TEST(DualMethodsTest, BasicPushAndHit) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  EXPECT_TRUE(s.pushCapable());
  EXPECT_TRUE(s.onPush(push(1, 50, 5)).stored);
  EXPECT_TRUE(s.onRequest(req(1, 50)).hit);
}

TEST(DualMethodsTest, MissAlwaysAdmitsLikeGdStar) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  const auto out = s.onRequest(req(7, 80));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_EQ(s.usedBytes(), 80u);
}

TEST(DualMethodsTest, PushEvictionOrderedBySubscriptionValue) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  // Page 1 is access-hot (high gd value) but has few subscriptions.
  s.onRequest(req(1, 50, 0, 1));
  s.onRequest(req(1, 50, 0, 1));
  s.onRequest(req(1, 50, 0, 1));
  // Page 2 cached via push with moderate subscriptions.
  s.onPush(push(2, 50, 5));
  // A push with a higher subscription value evicts page 1 FIRST even
  // though it is in hot use — the overlap problem of DM.
  EXPECT_TRUE(s.onPush(push(3, 60, 50)).stored);
  EXPECT_FALSE(s.size() > 2);
  EXPECT_FALSE(s.onRequest(req(1, 50, 0, 1)).hit);
}

TEST(DualMethodsTest, AccessEvictionOrderedByGdValue) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  // Page 1: pushed with huge subscription value but never accessed ->
  // gd value is tiny (a = 0).
  s.onPush(push(1, 50, 1000));
  // Page 2: accessed repeatedly -> higher gd value.
  s.onRequest(req(2, 40, 0, 0));
  s.onRequest(req(2, 40, 0, 0));
  // A miss needing space evicts page 1 (lowest gd value) despite its
  // high subscription count.
  const auto out = s.onRequest(req(3, 50, 0, 0));
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_FALSE(s.onRequest(req(1, 50, 0, 1000)).hit);
  EXPECT_TRUE(s.onRequest(req(2, 40, 0, 0)).hit);
}

TEST(DualMethodsTest, PushRefusedWhenSubCandidatesInsufficient) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  s.onPush(push(1, 50, 100));
  s.onPush(push(2, 50, 100));
  EXPECT_FALSE(s.onPush(push(3, 50, 1)).stored);
  EXPECT_EQ(s.size(), 2u);
}

TEST(DualMethodsTest, InflationTracksAccessEvictions) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  s.onRequest(req(1, 100, 0, 0));  // gd value = 0.01
  EXPECT_DOUBLE_EQ(s.inflation(), 0.0);
  s.onRequest(req(2, 100, 0, 0));  // evicts page 1
  EXPECT_DOUBLE_EQ(s.inflation(), 0.01);
}

TEST(DualMethodsTest, VersionPushRefreshesKeepingHistory) {
  DualMethodsStrategy s(1000, 1.0, 1.0);
  s.onPush(push(1, 100, 5, 0));
  s.onRequest(req(1, 100, 0, 5));
  s.onPush(push(1, 150, 5, 1));
  const auto out = s.onRequest(req(1, 150, 1, 5));
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(s.usedBytes(), 150u);
}

TEST(DualMethodsTest, StaleHandledAtAccessTime) {
  DualMethodsStrategy s(1000, 1.0, 1.0);
  s.onPush(push(1, 100, 5, 0));
  const auto out = s.onRequest(req(1, 100, 4, 5));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_TRUE(s.onRequest(req(1, 100, 4, 5)).hit);
}

TEST(DualMethodsTest, OversizedMissNotStored) {
  DualMethodsStrategy s(100, 1.0, 1.0);
  EXPECT_FALSE(s.onRequest(req(1, 500)).storedAfterMiss);
}

TEST(DualMethodsTest, InvariantsUnderChurn) {
  DualMethodsStrategy s(400, 1.5, 2.0);
  for (int i = 0; i < 400; ++i) {
    const PageId p = i % 11;
    if (i % 2 == 0) {
      s.onPush(push(p, 30 + (i % 6) * 25, (i % 9) + 1, i % 3));
    } else {
      s.onRequest(req(p, 30 + (i % 6) * 25, i % 3, (i % 9) + 1));
    }
    s.checkInvariants();
  }
  EXPECT_LE(s.usedBytes(), s.capacityBytes());
}

TEST(DualMethodsTest, RejectsBadParams) {
  EXPECT_THROW(DualMethodsStrategy(100, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DualMethodsStrategy(100, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pscd
