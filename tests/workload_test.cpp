#include "pscd/workload/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace pscd {
namespace {

WorkloadParams tinyParams(std::uint64_t seed = 42) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 300;
  p.publishing.numUpdatedPages = 120;
  p.publishing.maxVersionsPerPage = 20;
  p.request.totalRequests = 8000;
  p.request.numProxies = 10;
  p.request.minServerPool = 2;
  p.seed = seed;
  return p;
}

TEST(WorkloadTest, BuildsValidWorkload) {
  const Workload w = buildWorkload(tinyParams());
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.numPages(), 300u);
  EXPECT_EQ(w.numProxies(), 10u);
  EXPECT_EQ(w.requests.size(), 8000u);
  EXPECT_GT(w.publishes.size(), 300u);  // originals + modifications
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const Workload a = buildWorkload(tinyParams(7));
  const Workload b = buildWorkload(tinyParams(7));
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].page, b.requests[i].page);
    EXPECT_EQ(a.requests[i].proxy, b.requests[i].proxy);
  }
  EXPECT_EQ(a.subEntries.size(), b.subEntries.size());
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  const Workload a = buildWorkload(tinyParams(1));
  const Workload b = buildWorkload(tinyParams(2));
  bool different = a.requests.size() != b.requests.size();
  for (std::size_t i = 0; !different && i < a.requests.size(); ++i) {
    different = a.requests[i].page != b.requests[i].page;
  }
  EXPECT_TRUE(different);
}

TEST(WorkloadTest, SubscriptionLookupMatchesCsr) {
  const Workload w = buildWorkload(tinyParams());
  for (PageId page = 0; page < w.numPages(); ++page) {
    for (const auto& n : w.subscriptions(page)) {
      EXPECT_EQ(w.subscriptionCount(page, n.proxy), n.matchCount);
    }
  }
  EXPECT_EQ(w.subscriptionCount(0, 9999u % w.numProxies()),
            w.subscriptionCount(0, 9999u % w.numProxies()));
  EXPECT_THROW(w.subscriptions(w.numPages()), std::out_of_range);
}

TEST(WorkloadTest, PerfectQualityTotalsEqualRequests) {
  const Workload w = buildWorkload(tinyParams());
  EXPECT_EQ(w.totalSubscriptions(), w.requests.size());
}

TEST(WorkloadTest, EveryRequestedPairHasSubscription) {
  const Workload w = buildWorkload(tinyParams());
  std::set<std::pair<PageId, ProxyId>> pairs;
  for (const auto& r : w.requests) pairs.insert({r.page, r.proxy});
  for (const auto& [page, proxy] : pairs) {
    EXPECT_GE(w.subscriptionCount(page, proxy), 1u);
  }
}

TEST(WorkloadTest, UniqueBytesConsistent) {
  const Workload w = buildWorkload(tinyParams());
  // Recompute independently.
  std::vector<Bytes> expect(w.numProxies(), 0);
  std::set<std::pair<PageId, ProxyId>> seen;
  for (const auto& r : w.requests) {
    if (seen.insert({r.page, r.proxy}).second) {
      expect[r.proxy] += w.pages[r.page].size;
    }
  }
  for (ProxyId p = 0; p < w.numProxies(); ++p) {
    EXPECT_EQ(w.uniqueBytesRequested[p], expect[p]);
    EXPECT_GT(w.uniqueBytesRequested[p], 0u);
  }
}

TEST(WorkloadTest, TraceParamsDifferOnlyInAlpha) {
  const auto news = newsTraceParams();
  const auto alt = alternativeTraceParams();
  EXPECT_DOUBLE_EQ(news.request.zipfAlpha, 1.5);
  EXPECT_DOUBLE_EQ(alt.request.zipfAlpha, 1.0);
  EXPECT_EQ(news.publishing.numPages, alt.publishing.numPages);
}

TEST(WorkloadTest, ValidateCatchesCorruption) {
  Workload w = buildWorkload(tinyParams());
  w.subOffsets.back() += 1;
  EXPECT_THROW(w.validate(), std::logic_error);
}

TEST(WorkloadTest, ValidateCatchesUnsortedRequests) {
  Workload w = buildWorkload(tinyParams());
  ASSERT_GT(w.requests.size(), 2u);
  std::swap(w.requests.front(), w.requests.back());
  EXPECT_THROW(w.validate(), std::logic_error);
}

}  // namespace
}  // namespace pscd
