#include "pscd/util/table.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
  EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t({"name", "v"});
  t.row().cell("alpha").cell(std::uint64_t{1});
  t.row().cell("b").cell(std::uint64_t{22});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | v  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22 |"), std::string::npos);
}

TEST(AsciiTableTest, SeparatorUnderHeader) {
  AsciiTable t({"a"});
  t.row().cell("x");
  const std::string out = t.render();
  EXPECT_NE(out.find("|---|"), std::string::npos);
}

TEST(AsciiTableTest, DoubleCellsUsePrecision) {
  AsciiTable t({"h"});
  t.row().cell(1.23456, 3);
  EXPECT_NE(t.render().find("1.235"), std::string::npos);
}

TEST(AsciiTableTest, MissingCellsRenderEmpty) {
  AsciiTable t({"a", "b"});
  t.row().cell("only");
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(AsciiTableTest, TooManyCellsThrows) {
  AsciiTable t({"a"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), std::logic_error);
}

TEST(AsciiTableTest, CellWithoutRowThrows) {
  AsciiTable t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(AsciiTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTableTest, RowCount) {
  AsciiTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace pscd
