#include "pscd/workload/requests.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "pscd/workload/publishing.h"

namespace pscd {
namespace {

struct Setup {
  std::vector<PageInfo> pages;
  RequestParams params;
  SimTime horizon = 7 * kDay;
};

Setup makeSetup(std::uint64_t seed, double alpha = 1.5) {
  Setup s;
  PublishingParams pp;
  pp.numPages = 800;
  pp.numUpdatedPages = 300;
  Rng rng(seed);
  s.pages = generatePublishing(pp, alpha, 0.85, rng).pages;
  s.params.totalRequests = 30000;
  s.params.numProxies = 40;
  s.params.zipfAlpha = alpha;
  return s;
}

TEST(PopularityClassTest, BoundariesFollowRateDecades) {
  // alpha = 1.5: rate drops 10x at rank 10^(2/3) ~ 4.64.
  EXPECT_EQ(popularityClassForRank(1, 1.5), 0);
  EXPECT_EQ(popularityClassForRank(4, 1.5), 0);
  EXPECT_EQ(popularityClassForRank(5, 1.5), 1);
  EXPECT_EQ(popularityClassForRank(21, 1.5), 1);
  EXPECT_EQ(popularityClassForRank(22, 1.5), 2);
  EXPECT_EQ(popularityClassForRank(100, 1.5), 3);
  // alpha = 1.0: decades at 10, 100, 1000.
  EXPECT_EQ(popularityClassForRank(10, 1.0), 1);
  EXPECT_EQ(popularityClassForRank(100, 1.0), 2);
  EXPECT_EQ(popularityClassForRank(1000, 1.0), 3);
  EXPECT_THROW(popularityClassForRank(0, 1.0), std::invalid_argument);
}

TEST(RequestsTest, TotalCountMatches) {
  auto s = makeSetup(1);
  Rng rng(2);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  EXPECT_EQ(reqs.size(), 30000u);
}

TEST(RequestsTest, RequestsSortedAndInRange) {
  auto s = makeSetup(3);
  Rng rng(4);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  SimTime prev = 0.0;
  for (const auto& r : reqs) {
    EXPECT_GE(r.time, prev);
    EXPECT_LE(r.time, s.horizon);
    EXPECT_LT(r.page, s.pages.size());
    EXPECT_LT(r.proxy, s.params.numProxies);
    prev = r.time;
  }
}

TEST(RequestsTest, NoRequestBeforeFirstPublish) {
  auto s = makeSetup(5);
  Rng rng(6);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  for (const auto& r : reqs) {
    EXPECT_GE(r.time, s.pages[r.page].firstPublish);
  }
}

TEST(RequestsTest, PerPageCountsRecorded) {
  auto s = makeSetup(7);
  Rng rng(8);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  std::map<PageId, std::uint32_t> counts;
  for (const auto& r : reqs) ++counts[r.page];
  for (const auto& [page, n] : counts) {
    EXPECT_EQ(s.pages[page].requestCount, n);
  }
}

TEST(RequestsTest, PopularityFollowsZipf) {
  auto s = makeSetup(9);
  Rng rng(10);
  generateRequests(s.params, s.horizon, s.pages, rng);
  // Find the rank-1 and rank-8 pages; their counts should differ by
  // roughly 8^1.5 ~ 22.6.
  std::uint32_t n1 = 0, n8 = 0;
  for (const auto& p : s.pages) {
    if (p.popularityRank == 1) n1 = p.requestCount;
    if (p.popularityRank == 8) n8 = p.requestCount;
  }
  ASSERT_GT(n8, 0u);
  EXPECT_NEAR(static_cast<double>(n1) / n8, std::pow(8.0, 1.5), 8.0);
}

TEST(RequestsTest, PoolSizeBoundsRespected) {
  auto s = makeSetup(11);
  s.params.minServerPool = 3;
  Rng rng(12);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  // Proxies per (page, day) never exceed numProxies and the pool floor
  // keeps even unpopular pages on >= 1 proxies overall.
  std::map<std::pair<PageId, int>, std::set<ProxyId>> perDay;
  for (const auto& r : reqs) {
    perDay[{r.page, static_cast<int>(r.time / kDay)}].insert(r.proxy);
  }
  for (const auto& [key, proxies] : perDay) {
    EXPECT_LE(proxies.size(), s.params.numProxies);
  }
}

TEST(RequestsTest, PopularPagesReachMoreProxies) {
  auto s = makeSetup(13);
  Rng rng(14);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  std::map<PageId, std::set<ProxyId>> spread;
  for (const auto& r : reqs) spread[r.page].insert(r.proxy);
  PageId top = 0;
  std::uint32_t topCount = 0;
  for (PageId p = 0; p < s.pages.size(); ++p) {
    if (s.pages[p].requestCount > topCount) {
      topCount = s.pages[p].requestCount;
      top = p;
    }
  }
  // Eq. 6: the most popular page's pool covers all proxies.
  EXPECT_GT(spread[top].size(), s.params.numProxies / 2);
}

TEST(RequestsTest, NotificationDrivenFractionApplied) {
  auto s = makeSetup(15);
  s.params.notificationDrivenFraction = 0.5;
  Rng rng(16);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  const auto driven =
      std::count_if(reqs.begin(), reqs.end(),
                    [](const RequestEvent& r) { return r.notificationDriven; });
  EXPECT_NEAR(static_cast<double>(driven) / reqs.size(), 0.5, 0.03);
}

TEST(RequestsTest, AllDrivenByDefault) {
  auto s = makeSetup(17);
  Rng rng(18);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  for (const auto& r : reqs) EXPECT_TRUE(r.notificationDriven);
}

TEST(RequestsTest, MissingRanksRejected) {
  auto s = makeSetup(19);
  for (auto& p : s.pages) p.popularityRank = 0;
  Rng rng(20);
  EXPECT_THROW(generateRequests(s.params, s.horizon, s.pages, rng),
               std::invalid_argument);
}

TEST(RequestsTest, DeterministicPerSeed) {
  auto s1 = makeSetup(21), s2 = makeSetup(21);
  Rng a(22), b(22);
  const auto r1 = generateRequests(s1.params, s1.horizon, s1.pages, a);
  const auto r2 = generateRequests(s2.params, s2.horizon, s2.pages, b);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].page, r2[i].page);
    EXPECT_EQ(r1[i].proxy, r2[i].proxy);
    EXPECT_DOUBLE_EQ(r1[i].time, r2[i].time);
  }
}

TEST(RequestsTest, FreshnessBiasForTopClass) {
  auto s = makeSetup(23);
  Rng rng(24);
  const auto reqs = generateRequests(s.params, s.horizon, s.pages, rng);
  // For class-0 pages, the median age relative to the nearest preceding
  // version must be small (strong negative age correlation).
  std::vector<double> ages;
  for (const auto& r : reqs) {
    const auto& info = s.pages[r.page];
    if (info.popularityClass != 0) continue;
    double versionTime = info.firstPublish;
    if (info.modificationInterval > 0) {
      const auto k = std::min<std::uint64_t>(
          static_cast<std::uint64_t>((r.time - info.firstPublish) /
                                     info.modificationInterval),
          info.numVersions - 1);
      versionTime = info.firstPublish + k * info.modificationInterval;
    }
    ages.push_back(r.time - versionTime);
  }
  ASSERT_GT(ages.size(), 100u);
  std::sort(ages.begin(), ages.end());
  EXPECT_LT(ages[ages.size() / 2], 6 * kHour);
}

}  // namespace
}  // namespace pscd
