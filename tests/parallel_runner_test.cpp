#include "pscd/sim/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "pscd/sim/experiment.h"
#include "pscd/util/check.h"

namespace pscd {
namespace {

ExperimentCell makeCell(TraceKind trace, double sq, StrategyKind kind,
                        double cap) {
  ExperimentCell cell;
  cell.trace = trace;
  cell.subscriptionQuality = sq;
  cell.strategy = kind;
  cell.capacityFraction = cap;
  return cell;
}

// Small but non-trivial cell grid: a fig4-style slice (2 strategies x
// 2 capacities) plus one explicit-beta cell.
std::vector<ExperimentCell> smallGrid() {
  std::vector<ExperimentCell> cells;
  for (const StrategyKind kind : {StrategyKind::kGDStar, StrategyKind::kSG2}) {
    for (const double cap : {0.05, 0.10}) {
      cells.push_back(makeCell(TraceKind::kNews, 1.0, kind, cap));
    }
  }
  ExperimentCell withBeta =
      makeCell(TraceKind::kNews, 0.6, StrategyKind::kSG1, 0.05);
  withBeta.beta = 2.0;
  cells.push_back(withBeta);
  return cells;
}

// Renders the metrics of every cell as CSV text, exactly as a bench's
// export phase would. Byte-comparing two of these is the determinism
// check: any scheduling-dependent result would change the string.
std::string metricsCsv(ParallelRunner& runner) {
  std::ostringstream csv;
  csv << "cell,requests,hits,hit_ratio,mean_rt,push_pages,fetch_pages\n";
  for (std::size_t i = 0; i < runner.cellCount(); ++i) {
    const SimMetrics& m = runner.result(i);
    csv << i << ',' << m.requests() << ',' << m.hits() << ','
        << m.hitRatio() << ',' << m.meanResponseTime() << ','
        << m.traffic().pushPages << ',' << m.traffic().fetchPages << '\n';
  }
  return csv.str();
}

std::string runGrid(std::uint64_t workloadSeed, unsigned jobs) {
  ExperimentContext ctx(workloadSeed, 7, /*scale=*/0.05);
  ParallelRunner runner(jobs);
  for (const ExperimentCell& cell : smallGrid()) {
    runner.schedule(ctx, cell);
  }
  runner.runAll();
  return metricsCsv(runner);
}

TEST(CellSeedTest, DeterministicAndDistinctPerIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = cellSeed(42, i);
    EXPECT_EQ(s, cellSeed(42, i));
    seeds.insert(s);
  }
  // SplitMix64 derivation: no collisions across a realistic cell count.
  EXPECT_EQ(seeds.size(), 1000u);
  // Different base seeds give different streams.
  EXPECT_NE(cellSeed(42, 0), cellSeed(43, 0));
}

TEST(ParallelRunnerTest, SerialAndParallelCsvByteIdentical) {
  // The acceptance criterion: across 3 workload seeds, jobs = 1 and
  // jobs = 4 produce byte-identical CSV renderings.
  for (const std::uint64_t seed : {42ull, 123ull, 20260806ull}) {
    const std::string serial = runGrid(seed, 1);
    const std::string parallel = runGrid(seed, 4);
    EXPECT_EQ(serial, parallel) << "seed " << seed;
    EXPECT_NE(serial.find("cell,requests"), std::string::npos);
  }
}

TEST(ParallelRunnerTest, RepeatedParallelRunsAreStable) {
  // Same seed, same jobs, two separate runs: thread interleavings must
  // not leak into the results.
  EXPECT_EQ(runGrid(42, 4), runGrid(42, 4));
}

TEST(ParallelRunnerTest, ResultsKeepScheduleOrder) {
  ExperimentContext ctx(42, 7, 0.05);
  ParallelRunner runner(4);
  const auto cells = smallGrid();
  std::vector<std::size_t> indices;
  for (const ExperimentCell& cell : cells) {
    indices.push_back(runner.schedule(ctx, cell));
  }
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
  runner.runAll();
  EXPECT_EQ(runner.cellCount(), cells.size());
  // Each cell's slot matches a direct serial run of the same setting.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExperimentCell& c = cells[i];
    const SimMetrics direct =
        c.beta ? ctx.runWithBeta(c.trace, c.subscriptionQuality, c.strategy,
                                 c.capacityFraction, *c.beta, c.scheme,
                                 c.collectHourly)
               : ctx.run(c.trace, c.subscriptionQuality, c.strategy,
                         c.capacityFraction);
    EXPECT_EQ(runner.result(i).hits(), direct.hits()) << "cell " << i;
    EXPECT_EQ(runner.result(i).requests(), direct.requests()) << "cell " << i;
  }
}

TEST(ParallelRunnerTest, IncrementalSchedulingRunsOnlyNewCells) {
  ExperimentContext ctx(42, 7, 0.05);
  ParallelRunner runner(2);
  runner.schedule(ctx, makeCell(TraceKind::kNews, 1.0, StrategyKind::kGDStar, 0.05));
  runner.runAll();
  const std::uint64_t firstHits = runner.result(0).hits();
  runner.schedule(ctx, makeCell(TraceKind::kNews, 1.0, StrategyKind::kSG2, 0.05));
  runner.runAll();
  EXPECT_EQ(runner.result(0).hits(), firstHits);
  EXPECT_GT(runner.result(1).requests(), 0u);
}

TEST(ParallelRunnerTest, ResultBeforeRunAllIsRejected) {
  ExperimentContext ctx(42, 7, 0.05);
  ParallelRunner runner(2);
  runner.schedule(ctx, makeCell(TraceKind::kNews, 1.0, StrategyKind::kGDStar, 0.05));
  EXPECT_THROW(runner.result(0), CheckFailure);
}

TEST(ExperimentContextTest, ConcurrentCellsShareMemoizedWorkload) {
  // All cells pull the same workload/network through the context's
  // guarded memo; the pointer identity proves they shared one build.
  ExperimentContext ctx(42, 7, 0.05);
  ParallelRunner runner(4);
  for (const ExperimentCell& cell : smallGrid()) runner.schedule(ctx, cell);
  runner.runAll();
  const Workload* w = &ctx.workload(TraceKind::kNews, 1.0);
  EXPECT_EQ(w, &ctx.workload(TraceKind::kNews, 1.0));
}

}  // namespace
}  // namespace pscd
