// LatencyHistogram: bucket boundaries, merge algebra, and percentile
// accuracy against a sorted-vector oracle — plus the open-loop pacing
// schedule's purity/determinism properties (the coordinated-omission
// guard rails of bench_serve).
#include "pscd/net/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "pscd/net/pacing.h"
#include "pscd/util/rng.h"

namespace pscd::net {
namespace {

TEST(Histogram, SubBucketBitsValidated) {
  EXPECT_THROW(LatencyHistogram(0), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(11), std::invalid_argument);
  EXPECT_NO_THROW(LatencyHistogram(1));
  EXPECT_NO_THROW(LatencyHistogram(10));
}

TEST(Histogram, EmptyHistogram) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sumSeconds(), 0.0);
  EXPECT_EQ(h.maxSeconds(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, UnitBucketsAreExact) {
  // With B sub-bucket bits, values below 2^B nanoseconds each get their
  // own bucket: every percentile of a single recorded value is exact.
  LatencyHistogram h(5);
  h.recordNanos(13);
  for (const double q : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 13.0 * 1e-9) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.maxSeconds(), 13.0 * 1e-9);
}

TEST(Histogram, BucketBoundaryCases) {
  LatencyHistogram h(5);  // S = 32 sub-buckets
  // 31 is the last unit bucket; 32 starts the first octave group; 100
  // lands in a width-2 bucket [100, 101].
  h.recordNanos(31);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 31.0 * 1e-9);
  LatencyHistogram h2(5);
  h2.recordNanos(32);
  EXPECT_DOUBLE_EQ(h2.percentile(0.0), 32.0 * 1e-9);
  LatencyHistogram h3(5);
  h3.recordNanos(100);
  EXPECT_DOUBLE_EQ(h3.percentile(0.0), 101.0 * 1e-9);
  h3.recordNanos(101);
  EXPECT_DOUBLE_EQ(h3.percentile(100.0), 101.0 * 1e-9);  // same bucket
}

TEST(Histogram, RelativeErrorBounded) {
  // For any value, the reported percentile is >= the value and within a
  // 2^-B relative error above it.
  for (const unsigned bits : {1u, 5u, 10u}) {
    const double maxRel = 1.0 / static_cast<double>(1ull << bits);
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t v = 1 + rng.uniformInt(std::uint64_t{1} << 40);
      LatencyHistogram h(bits);
      h.recordNanos(v);
      const double reported = h.percentile(50.0) * 1e9;
      EXPECT_GE(reported, static_cast<double>(v));
      EXPECT_LE(reported, static_cast<double>(v) * (1.0 + maxRel));
    }
  }
}

TEST(Histogram, RecordClampsPathologicalInputs) {
  LatencyHistogram h;
  h.record(-1.0);                // clamps to zero
  h.record(std::nan(""));        // NaN fails the > 0 test: zero
  h.record(1e30);                // far beyond the top bucket: clamps
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.maxSeconds(), 1e8);  // the clamped top bucket (~146 yr)
}

TEST(Histogram, SecondsEntryPointMatchesNanos) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(0.25);  // 0.25s and 1e9 are exact doubles: no truncation slop
  b.recordNanos(250000000);
  EXPECT_EQ(a, b);
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  Rng rng(11);
  LatencyHistogram all;
  std::vector<LatencyHistogram> parts(4, LatencyHistogram{});
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniformInt(std::uint64_t{1} << 34);
    all.recordNanos(v);
    parts[static_cast<std::size_t>(i % 4)].recordNanos(v);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& part : parts) merged.merge(part);
  EXPECT_EQ(merged, all);
}

TEST(Histogram, MergeIsAssociative) {
  Rng rng(12);
  std::vector<LatencyHistogram> h(3, LatencyHistogram{});
  for (int i = 0; i < 3000; ++i) {
    h[static_cast<std::size_t>(i % 3)].recordNanos(
        rng.uniformInt(std::uint64_t{1} << 30));
  }
  LatencyHistogram left = h[0];  // (a + b) + c
  left.merge(h[1]);
  left.merge(h[2]);
  LatencyHistogram bc = h[1];  // a + (b + c)
  bc.merge(h[2]);
  LatencyHistogram right = h[0];
  right.merge(bc);
  EXPECT_EQ(left, right);
}

TEST(Histogram, MergeRejectsMismatchedPrecision) {
  LatencyHistogram a(5);
  const LatencyHistogram b(6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, PercentilesWithinOneBucketOfSortedOracle) {
  // Seeded mixed workload spanning the unit buckets and many octaves.
  Rng rng(42);
  LatencyHistogram h(5);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish: pick an octave, then a value inside it.
    const unsigned octave = static_cast<unsigned>(
        rng.uniformInt(std::uint64_t{36}));
    const std::uint64_t v =
        (std::uint64_t{1} << octave) +
        rng.uniformInt((std::uint64_t{1} << octave) | 1u);
    samples.push_back(v);
    h.recordNanos(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(samples.size())));
    if (rank < 1) rank = 1;
    const double exact =
        static_cast<double>(samples[static_cast<std::size_t>(rank - 1)]);
    const double reported = h.percentile(q) * 1e9;
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported, exact * (1.0 + 1.0 / 32.0) + 1.0) << "q=" << q;
  }
}

TEST(Histogram, PercentileMonotoneInQ) {
  Rng rng(13);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    h.recordNanos(rng.uniformInt(std::uint64_t{1} << 28));
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 100.0; q += 0.5) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

// ---- open-loop pacing schedule ---------------------------------------

TEST(Pacing, UniformScheduleIsExact) {
  PacingConfig config;
  config.targetQps = 100.0;
  config.durationSeconds = 2.0;
  const std::vector<double> schedule = buildOpenLoopSchedule(config);
  ASSERT_EQ(schedule.size(), 200u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule[i], static_cast<double>(i) / 100.0);
  }
}

TEST(Pacing, ScheduleIsSortedAndInRange) {
  for (const PacingKind kind : {PacingKind::kUniform, PacingKind::kPoisson}) {
    PacingConfig config;
    config.kind = kind;
    config.targetQps = 500.0;
    config.durationSeconds = 1.5;
    config.seed = 99;
    const std::vector<double> schedule = buildOpenLoopSchedule(config);
    EXPECT_FALSE(schedule.empty());
    EXPECT_TRUE(std::is_sorted(schedule.begin(), schedule.end()));
    EXPECT_GE(schedule.front(), 0.0);
    EXPECT_LT(schedule.back(), config.durationSeconds);
  }
}

TEST(Pacing, ScheduleIsAPureFunctionOfConfig) {
  // The open-loop guarantee: send times depend on (config, seed) alone,
  // never on anything the service does — two invocations (with
  // arbitrary other work between them) are bit-identical.
  PacingConfig config;
  config.kind = PacingKind::kPoisson;
  config.targetQps = 2000.0;
  config.durationSeconds = 0.75;
  config.seed = 7;
  const std::vector<double> first = buildOpenLoopSchedule(config);
  Rng unrelated(1234);  // unrelated RNG traffic cannot perturb it
  for (int i = 0; i < 1000; ++i) unrelated.next();
  const std::vector<double> second = buildOpenLoopSchedule(config);
  EXPECT_EQ(first, second);
}

TEST(Pacing, DistinctSeedsGiveDistinctPoissonSchedules) {
  PacingConfig a;
  a.kind = PacingKind::kPoisson;
  a.seed = 1;
  PacingConfig b = a;
  b.seed = 2;
  EXPECT_NE(buildOpenLoopSchedule(a), buildOpenLoopSchedule(b));
}

TEST(Pacing, PoissonMeanRateApproximatesTarget) {
  PacingConfig config;
  config.kind = PacingKind::kPoisson;
  config.targetQps = 10000.0;
  config.durationSeconds = 1.0;
  config.seed = 5;
  const std::vector<double> schedule = buildOpenLoopSchedule(config);
  // 10k arrivals: the count concentrates within a few percent.
  EXPECT_GT(schedule.size(), 9500u);
  EXPECT_LT(schedule.size(), 10500u);
}

TEST(Pacing, InvalidConfigRejected) {
  PacingConfig config;
  config.targetQps = 0.0;
  EXPECT_THROW(buildOpenLoopSchedule(config), std::invalid_argument);
  config.targetQps = -5.0;
  EXPECT_THROW(buildOpenLoopSchedule(config), std::invalid_argument);
  config.targetQps = 100.0;
  config.durationSeconds = 0.0;
  EXPECT_THROW(buildOpenLoopSchedule(config), std::invalid_argument);
  config.durationSeconds =
      std::numeric_limits<double>::infinity();
  EXPECT_THROW(buildOpenLoopSchedule(config), std::invalid_argument);
}

}  // namespace
}  // namespace pscd::net
