#include "pscd/cache/oracle_strategy.h"

#include <gtest/gtest.h>

#include "pscd/cache/strategy_factory.h"
#include "pscd/sim/simulator.h"
#include "pscd/workload/workload.h"

namespace pscd {
namespace {

RequestSchedule schedule(
    std::initializer_list<std::pair<PageId, std::vector<SimTime>>> entries) {
  RequestSchedule s;
  for (const auto& [page, times] : entries) s.times[page] = times;
  return s;
}

PushContext push(PageId page, Bytes size, Version version = 0,
                 SimTime now = 0.0) {
  return PushContext{page, version, size, 1, now};
}

RequestContext req(PageId page, Bytes size, SimTime now,
                   Version latest = 0) {
  return RequestContext{page, latest, size, 1, now};
}

TEST(OracleTest, StoresOnlyPagesWithFutureRequests) {
  OracleStrategy s(100, schedule({{1, {10.0}}, {2, {}}}));
  EXPECT_TRUE(s.onPush(push(1, 40)).stored);
  EXPECT_FALSE(s.onPush(push(2, 40)).stored);  // never requested
  EXPECT_FALSE(s.onPush(push(3, 40)).stored);  // unknown page
}

TEST(OracleTest, PushedPageHitsAtScheduledTime) {
  OracleStrategy s(100, schedule({{1, {10.0, 20.0}}}));
  s.onPush(push(1, 40));
  EXPECT_TRUE(s.onRequest(req(1, 40, 10.0)).hit);
  EXPECT_TRUE(s.onRequest(req(1, 40, 20.0)).hit);
}

TEST(OracleTest, EvictsFarthestNextUse) {
  OracleStrategy s(100, schedule({{1, {100.0}}, {2, {10.0}}, {3, {5.0}}}));
  s.onPush(push(1, 50));
  s.onPush(push(2, 50));
  // Page 3 is needed soonest; page 1 (farthest use) must go.
  EXPECT_TRUE(s.onPush(push(3, 50)).stored);
  EXPECT_FALSE(s.onRequest(req(1, 50, 1.0)).hit);
  EXPECT_TRUE(s.onRequest(req(3, 50, 5.0)).hit);
  EXPECT_TRUE(s.onRequest(req(2, 50, 10.0)).hit);
}

TEST(OracleTest, DropsFullyConsumedPages) {
  OracleStrategy s(100, schedule({{1, {10.0}}, {2, {50.0}}}));
  s.onPush(push(1, 60));
  EXPECT_TRUE(s.onRequest(req(1, 60, 10.0)).hit);
  // Page 1 has no future use left; pushing page 2 reclaims its space.
  EXPECT_TRUE(s.onPush(push(2, 60, 0, 11.0)).stored);
}

TEST(OracleTest, StaleCopyRefetched) {
  OracleStrategy s(100, schedule({{1, {10.0, 20.0}}}));
  s.onPush(push(1, 40, 0));
  const auto out = s.onRequest(req(1, 40, 10.0, /*latest=*/2));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_TRUE(out.storedAfterMiss);  // still needed at t=20
  EXPECT_TRUE(s.onRequest(req(1, 40, 20.0, 2)).hit);
}

TEST(OracleTest, RejectsUnsortedSchedule) {
  EXPECT_THROW(OracleStrategy(100, schedule({{1, {5.0, 1.0}}})),
               std::invalid_argument);
}

TEST(OracleTest, BuildSchedulesCoversWholeWorkload) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 200;
  p.publishing.numUpdatedPages = 80;
  p.request.totalRequests = 4000;
  p.request.numProxies = 6;
  p.request.minServerPool = 2;
  const Workload w = buildWorkload(p);
  const auto schedules = buildRequestSchedules(w);
  ASSERT_EQ(schedules.size(), 6u);
  std::size_t total = 0;
  for (const auto& s : schedules) {
    for (const auto& [page, times] : s.times) {
      EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
      total += times.size();
    }
  }
  EXPECT_EQ(total, w.requests.size());
}

TEST(OracleTest, BeatsEveryOnlineStrategyOnRealWorkload) {
  // The defining property of a clairvoyant bound.
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 400;
  p.publishing.numUpdatedPages = 160;
  p.publishing.maxVersionsPerPage = 25;
  p.request.totalRequests = 12000;
  p.request.numProxies = 8;
  p.request.minServerPool = 3;
  const Workload w = buildWorkload(p);
  Rng rng(3);
  const Network net(NetworkParams{.numProxies = 8}, rng);
  const auto schedules = buildRequestSchedules(w);

  // Replay the oracle through the same event loop as the simulator.
  std::vector<std::unique_ptr<DistributionStrategy>> proxies;
  SimConfig sc;
  sc.capacityFraction = 0.05;
  Simulator capacityHelper(w, net, sc);
  for (ProxyId pr = 0; pr < 8; ++pr) {
    proxies.push_back(std::make_unique<OracleStrategy>(
        capacityHelper.proxyCapacity(pr), schedules[pr]));
  }
  std::vector<Version> latest(w.numPages(), 0);
  std::uint64_t hits = 0;
  std::size_t pi = 0, ri = 0;
  while (pi < w.publishes.size() || ri < w.requests.size()) {
    const bool takePublish =
        pi < w.publishes.size() &&
        (ri >= w.requests.size() ||
         w.publishes[pi].time <= w.requests[ri].time);
    if (takePublish) {
      const auto& e = w.publishes[pi++];
      latest[e.page] = e.version;
      for (const auto& n : w.subscriptions(e.page)) {
        proxies[n.proxy]->onPush(
            {e.page, e.version, e.size, n.matchCount, e.time});
      }
    } else {
      const auto& r = w.requests[ri++];
      hits += proxies[r.proxy]
                  ->onRequest({r.page, latest[r.page], w.pages[r.page].size,
                               0, r.time})
                  .hit;
    }
  }
  const double oracle =
      static_cast<double>(hits) / static_cast<double>(w.requests.size());

  for (const StrategyKind kind :
       {StrategyKind::kGDStar, StrategyKind::kSG2, StrategyKind::kSR}) {
    SimConfig c;
    c.strategy = kind;
    c.beta = 2.0;
    c.capacityFraction = 0.05;
    const double online = Simulator(w, net, c).run().hitRatio();
    EXPECT_GE(oracle + 1e-9, online) << strategyName(kind);
  }
}

}  // namespace
}  // namespace pscd
