#include "pscd/core/engine.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : rng_(5), network_(NetworkParams{.numProxies = 4}, rng_) {}

  ContentDistributionEngine makeEngine(
      StrategyKind kind, PushScheme scheme = PushScheme::kAlwaysPushing,
      Bytes capacity = 1000) {
    EngineConfig c;
    c.strategy = kind;
    c.beta = 1.0;
    c.pushScheme = scheme;
    c.proxyCapacities.assign(4, capacity);
    return ContentDistributionEngine(network_, std::move(c));
  }

  static PublishEvent ev(PageId page, Bytes size, Version version = 0,
                         SimTime t = 0.0) {
    return PublishEvent{t, page, version, size};
  }

  Rng rng_;
  Network network_;
};

TEST_F(EngineTest, PublishNotifiesMatchedProxies) {
  auto e = makeEngine(StrategyKind::kSG2);
  e.broker().subscribeAggregated(0, 1, 2);
  e.broker().subscribeAggregated(3, 1, 5);
  const auto s = e.publish(ev(1, 100));
  EXPECT_EQ(s.proxiesNotified, 2u);
  EXPECT_EQ(s.proxiesStored, 2u);
  EXPECT_EQ(s.pagesTransferred, 2u);
  EXPECT_EQ(s.bytesTransferred, 200u);
}

TEST_F(EngineTest, NoPushTrafficForAccessOnlyStrategy) {
  auto e = makeEngine(StrategyKind::kGDStar);
  e.broker().subscribeAggregated(0, 1, 2);
  const auto s = e.publish(ev(1, 100));
  EXPECT_EQ(s.proxiesNotified, 1u);
  EXPECT_EQ(s.proxiesStored, 0u);
  EXPECT_EQ(s.pagesTransferred, 0u);
  EXPECT_EQ(s.bytesTransferred, 0u);
}

TEST_F(EngineTest, WhenNecessaryOnlyTransfersStoredPages) {
  // SUB with a tiny cache: the second push is refused, so under
  // Pushing-When-Necessary only one page travels.
  auto e = makeEngine(StrategyKind::kSUB, PushScheme::kPushingWhenNecessary,
                      120);
  e.broker().subscribeAggregated(0, 1, 50);
  e.broker().subscribeAggregated(0, 2, 1);
  EXPECT_EQ(e.publish(ev(1, 100)).pagesTransferred, 1u);
  const auto s2 = e.publish(ev(2, 100));
  EXPECT_EQ(s2.proxiesNotified, 1u);
  EXPECT_EQ(s2.proxiesStored, 0u);
  EXPECT_EQ(s2.pagesTransferred, 0u);
}

TEST_F(EngineTest, AlwaysPushingTransfersRegardless) {
  auto e = makeEngine(StrategyKind::kSUB, PushScheme::kAlwaysPushing, 120);
  e.broker().subscribeAggregated(0, 1, 50);
  e.broker().subscribeAggregated(0, 2, 1);
  e.publish(ev(1, 100));
  EXPECT_EQ(e.publish(ev(2, 100)).pagesTransferred, 1u);
}

TEST_F(EngineTest, RequestHitAfterPush) {
  auto e = makeEngine(StrategyKind::kSG2);
  e.broker().subscribeAggregated(1, 7, 3);
  e.publish(ev(7, 100));
  const auto r = e.request(1, 7, 1.0);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.bytesTransferred, 0u);
}

TEST_F(EngineTest, RequestMissFetches) {
  auto e = makeEngine(StrategyKind::kGDStar);
  e.publish(ev(7, 100));
  const auto r = e.request(2, 7, 1.0);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.bytesTransferred, 100u);
  EXPECT_TRUE(e.request(2, 7, 2.0).hit);  // now cached
}

TEST_F(EngineTest, VersionBumpInvalidatesUnpushedCaches) {
  auto e = makeEngine(StrategyKind::kGDStar);
  e.publish(ev(7, 100, 0));
  e.request(2, 7, 1.0);
  e.publish(ev(7, 100, 1, 2.0));
  const auto r = e.request(2, 7, 3.0);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.stale);
}

TEST_F(EngineTest, PushKeepsSubscribedProxiesFresh) {
  auto e = makeEngine(StrategyKind::kSG2);
  e.broker().subscribeAggregated(2, 7, 4);
  e.publish(ev(7, 100, 0));
  e.request(2, 7, 1.0);
  e.publish(ev(7, 100, 1, 2.0));  // re-pushed
  EXPECT_TRUE(e.request(2, 7, 3.0).hit);
}

TEST_F(EngineTest, LatestVersionAndSizeTracked) {
  auto e = makeEngine(StrategyKind::kGDStar);
  e.publish(ev(3, 50, 0));
  e.publish(ev(3, 70, 1));
  EXPECT_EQ(e.latestVersion(3), 1u);
  EXPECT_EQ(e.pageSize(3), 70u);
}

TEST_F(EngineTest, UnknownPageThrows) {
  auto e = makeEngine(StrategyKind::kGDStar);
  EXPECT_THROW(e.request(0, 99, 0.0), std::out_of_range);
  EXPECT_THROW(e.latestVersion(99), std::out_of_range);
}

TEST_F(EngineTest, BadConfigRejected) {
  EngineConfig c;
  c.proxyCapacities.assign(2, 100);  // network has 4 proxies
  EXPECT_THROW(ContentDistributionEngine(network_, std::move(c)),
               std::invalid_argument);
}

TEST_F(EngineTest, RequestRangeChecked) {
  auto e = makeEngine(StrategyKind::kGDStar);
  e.publish(ev(1, 10));
  EXPECT_THROW(e.request(99, 1, 0.0), std::out_of_range);
}

TEST_F(EngineTest, PredicateSubscriptionsDrivePushes) {
  auto e = makeEngine(StrategyKind::kSG2);
  Subscription s;
  s.proxy = 2;
  s.conjuncts = {{Predicate::Kind::kCategoryEq, 9}};
  e.broker().subscribe(s);
  ContentAttributes attrs;
  attrs.page = 5;
  attrs.category = 9;
  const auto out = e.publish(ev(5, 80), attrs);
  EXPECT_EQ(out.proxiesNotified, 1u);
  EXPECT_TRUE(e.request(2, 5, 1.0).hit);
}

TEST_F(EngineTest, ZeroSizePublishRejected) {
  auto e = makeEngine(StrategyKind::kGDStar);
  EXPECT_THROW(e.publish(ev(1, 0)), std::invalid_argument);
}

TEST_F(EngineTest, CheckInvariantsCoversAllProxies) {
  auto e = makeEngine(StrategyKind::kDCLAP);
  e.broker().subscribeAggregated(0, 1, 2);
  e.publish(ev(1, 100));
  e.request(0, 1, 1.0);
  EXPECT_NO_THROW(e.checkInvariants());
}

}  // namespace
}  // namespace pscd
