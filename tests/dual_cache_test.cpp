// Dual-Caches (section 3.3): fixed partition (DC-FP), adaptive partition
// (DC-AP, "Placing in DC-AP" claim algorithm) and the bounded variant
// DC-LAP.
#include "pscd/cache/dual_cache.h"

#include <gtest/gtest.h>

#include "pscd/util/rng.h"

namespace pscd {
namespace {

PushContext push(PageId page, Bytes size, std::uint32_t subs,
                 Version version = 0, SimTime now = 0.0) {
  return PushContext{page, version, size, subs, now};
}

RequestContext req(PageId page, Bytes size, Version latest = 0,
                   SimTime now = 0.0, std::uint32_t subs = 0) {
  return RequestContext{page, latest, size, subs, now};
}

DualCacheConfig fp() {
  DualCacheConfig c;
  c.mode = PartitionMode::kFixed;
  return c;
}

DualCacheConfig ap() {
  DualCacheConfig c;
  c.mode = PartitionMode::kAdaptive;
  c.minPcFraction = 0.0;
  c.maxPcFraction = 1.0;
  return c;
}

DualCacheConfig lap(double lo = 0.25, double hi = 0.75) {
  DualCacheConfig c;
  c.mode = PartitionMode::kLimitedAdaptive;
  c.minPcFraction = lo;
  c.maxPcFraction = hi;
  return c;
}

TEST(DualCacheTest, InitialPartitionSplitsCapacity) {
  DualCacheStrategy s(100, 1.0, fp());
  EXPECT_EQ(s.pushCache().capacity(), 50u);
  EXPECT_EQ(s.accessCache().capacity(), 50u);
  EXPECT_EQ(s.capacityBytes(), 100u);
  EXPECT_TRUE(s.pushCapable());
  EXPECT_EQ(s.name(), "DC-FP");
}

TEST(DualCacheTest, PushGoesToPushCache) {
  DualCacheStrategy s(100, 1.0, fp());
  EXPECT_TRUE(s.onPush(push(1, 40, 5)).stored);
  EXPECT_TRUE(s.pushCache().contains(1));
  EXPECT_FALSE(s.accessCache().contains(1));
}

TEST(DualCacheTest, MissGoesToAccessCache) {
  DualCacheStrategy s(100, 1.0, fp());
  const auto out = s.onRequest(req(7, 30));
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_TRUE(s.accessCache().contains(7));
  EXPECT_FALSE(s.pushCache().contains(7));
}

TEST(DualCacheFpTest, FirstAccessMovesPageToAccessCache) {
  DualCacheStrategy s(100, 1.0, fp());
  s.onPush(push(1, 40, 5));
  const auto out = s.onRequest(req(1, 40));
  EXPECT_TRUE(out.hit);
  EXPECT_FALSE(s.pushCache().contains(1));
  EXPECT_TRUE(s.accessCache().contains(1));
  // The fixed partition never moves.
  EXPECT_EQ(s.pushCache().capacity(), 50u);
  EXPECT_EQ(s.accessCache().capacity(), 50u);
  s.checkInvariants();
}

TEST(DualCacheFpTest, MoveMayEvictInAccessCache) {
  DualCacheStrategy s(100, 1.0, fp());
  s.onRequest(req(2, 40));  // AC now holds 40/50
  s.onPush(push(1, 30, 5));
  EXPECT_TRUE(s.onRequest(req(1, 30)).hit);  // move needs AC eviction
  EXPECT_TRUE(s.accessCache().contains(1));
  EXPECT_FALSE(s.accessCache().contains(2));
  s.checkInvariants();
}

TEST(DualCacheFpTest, PushRefusedWhenPcFullOfBetterPages) {
  DualCacheStrategy s(100, 1.0, fp());
  s.onPush(push(1, 25, 100));
  s.onPush(push(2, 25, 100));
  EXPECT_FALSE(s.onPush(push(3, 30, 1)).stored);
  // FP never claims AC space.
  EXPECT_EQ(s.pushCache().capacity(), 50u);
}

TEST(DualCacheApTest, AccessRelabelsInsteadOfMoving) {
  DualCacheStrategy s(100, 1.0, ap());
  s.onPush(push(1, 40, 5));
  EXPECT_TRUE(s.onRequest(req(1, 40)).hit);
  // Budget shifted with the page: PC shrank, AC grew.
  EXPECT_EQ(s.pushCache().capacity(), 10u);
  EXPECT_EQ(s.accessCache().capacity(), 90u);
  EXPECT_TRUE(s.accessCache().contains(1));
  s.checkInvariants();
}

TEST(DualCacheApTest, FailedPushClaimsIdleAccessPages) {
  DualCacheStrategy s(100, 1.0, ap());
  // Fill AC with two pages and trigger an AC replacement so one page
  // becomes "not referenced since the last replacement in AC".
  s.onRequest(req(1, 30, 0, 1.0));
  s.onRequest(req(2, 20, 0, 2.0));
  s.onRequest(req(3, 20, 0, 3.0));  // AC replacement evicts page 1
  // Pages 2 (lastAccess 2.0) and 3 (3.0): replacement happened at 3.0,
  // so both qualify as idle (lastAccess <= lastAcReplacement).
  ASSERT_GT(s.lastAcReplacement(), 0.0);
  // Fill PC with a high-value page so SUB cannot place the next push.
  s.onPush(push(10, 50, 100, 0, 4.0));
  EXPECT_TRUE(s.onPush(push(11, 40, 1, 0, 5.0)).stored);
  // The claim took AC storage: PC grew beyond its initial 50 bytes.
  EXPECT_GT(s.pushCache().capacity(), 50u);
  EXPECT_TRUE(s.pushCache().contains(11));
  s.checkInvariants();
}

TEST(DualCacheApTest, ClaimRefusedWithoutIdlePages) {
  DualCacheStrategy s(100, 1.0, ap());
  // AC pages accessed after the last replacement are protected.
  s.onRequest(req(1, 40, 0, 1.0));
  s.onPush(push(10, 50, 100, 0, 2.0));
  // No AC replacement has happened (lastAcReplacement = -1), so nothing
  // is claimable and the low-value push fails.
  EXPECT_FALSE(s.onPush(push(11, 40, 1, 0, 3.0)).stored);
  EXPECT_TRUE(s.accessCache().contains(1));
}

TEST(DualCacheLapTest, RelabelBoundedBelow) {
  DualCacheStrategy s(100, 1.0, lap(0.4, 0.6));
  s.onPush(push(1, 30, 5));
  // Relabeling would drop PC to 20 < 40 bytes: falls back to the FP
  // move (budgets unchanged).
  EXPECT_TRUE(s.onRequest(req(1, 30)).hit);
  EXPECT_EQ(s.pushCache().capacity(), 50u);
  EXPECT_TRUE(s.accessCache().contains(1));
  s.checkInvariants();
}

TEST(DualCacheLapTest, SmallRelabelAllowedWithinBounds) {
  DualCacheStrategy s(1000, 1.0, lap(0.25, 0.75));
  s.onPush(push(1, 100, 5));
  EXPECT_TRUE(s.onRequest(req(1, 100)).hit);
  // 500 - 100 = 400 >= 250: relabel allowed.
  EXPECT_EQ(s.pushCache().capacity(), 400u);
  s.checkInvariants();
}

TEST(DualCacheLapTest, ClaimBoundedAbove) {
  DualCacheStrategy s(100, 1.0, lap(0.25, 0.55));
  s.onRequest(req(1, 30, 0, 1.0));
  s.onRequest(req(2, 25, 0, 2.0));  // AC replacement at t=2 evicts page 1
  ASSERT_GT(s.lastAcReplacement(), 0.0);
  s.onPush(push(10, 50, 100, 0, 3.0));
  // Claiming page 2 (25 bytes) would raise PC to 75 > 55% of 100: the
  // claim is refused and the push fails.
  EXPECT_FALSE(s.onPush(push(11, 40, 1, 0, 4.0)).stored);
  EXPECT_EQ(s.pushCache().capacity(), 50u);
  s.checkInvariants();
}

TEST(DualCacheTest, StalePushedPageRefetchedIntoAccessCache) {
  DualCacheStrategy s(200, 1.0, fp());
  s.onPush(push(1, 40, 5, 0));
  const auto out = s.onRequest(req(1, 40, 3));
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.stale);
  EXPECT_TRUE(out.storedAfterMiss);
  EXPECT_TRUE(s.accessCache().contains(1));
  EXPECT_EQ(s.accessCache().find(1)->version, 3u);
}

TEST(DualCacheTest, VersionPushRefreshesAcResident) {
  DualCacheStrategy s(200, 1.0, fp());
  s.onRequest(req(1, 40, 0));          // cached in AC
  s.onPush(push(1, 60, 5, 2));         // new version arrives
  EXPECT_TRUE(s.accessCache().contains(1));
  EXPECT_EQ(s.accessCache().find(1)->version, 2u);
  EXPECT_TRUE(s.onRequest(req(1, 60, 2)).hit);  // no stale miss
}

TEST(DualCacheTest, AcHitUpdatesGdValue) {
  DualCacheStrategy s(200, 1.0, fp());
  s.onRequest(req(1, 50));
  const double v1 = s.accessCache().find(1)->value;
  s.onRequest(req(1, 50));
  EXPECT_GT(s.accessCache().find(1)->value, v1);
}

TEST(DualCacheTest, PageNeverInBothCaches) {
  DualCacheStrategy s(300, 1.0, ap());
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const PageId p = static_cast<PageId>(rng.uniformInt(std::uint64_t{9}));
    const Bytes size = 20 + 10 * rng.uniformInt(std::uint64_t{5});
    if (rng.bernoulli(0.5)) {
      s.onPush(push(p, size, 1 + static_cast<std::uint32_t>(
                                     rng.uniformInt(std::uint64_t{8})),
                    i % 3, i));
    } else {
      s.onRequest(req(p, size, i % 3, i));
    }
    s.checkInvariants();  // includes the both-caches check
  }
}

TEST(DualCacheTest, ConfigValidation) {
  DualCacheConfig bad = lap();
  bad.initialPcFraction = 0.9;  // outside [0.25, 0.75]
  EXPECT_THROW(DualCacheStrategy(100, 1.0, bad), std::invalid_argument);
  DualCacheConfig swapped = lap(0.8, 0.2);
  EXPECT_THROW(DualCacheStrategy(100, 1.0, swapped), std::invalid_argument);
  EXPECT_THROW(DualCacheStrategy(100, 0.0, fp()), std::invalid_argument);
}

TEST(DualCacheTest, NamesPerMode) {
  EXPECT_EQ(DualCacheStrategy(100, 1.0, fp()).name(), "DC-FP");
  EXPECT_EQ(DualCacheStrategy(100, 1.0, ap()).name(), "DC-AP");
  EXPECT_EQ(DualCacheStrategy(100, 1.0, lap()).name(), "DC-LAP");
}

}  // namespace
}  // namespace pscd
