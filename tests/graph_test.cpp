#include "pscd/topology/graph.h"

#include <gtest/gtest.h>

namespace pscd {
namespace {

TEST(GraphTest, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_EQ(g.numNodes(), 0u);
  EXPECT_TRUE(g.isConnected());
}

TEST(GraphTest, AddEdgeSymmetric) {
  Graph g(3);
  g.addEdge(0, 1, 2.5);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphTest, NeighborsCarryWeights) {
  Graph g(2);
  g.addEdge(0, 1, 7.0);
  const auto n = g.neighbors(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0].to, 1u);
  EXPECT_DOUBLE_EQ(n[0].weight, 7.0);
}

TEST(GraphTest, RejectsSelfLoopAndBadWeight) {
  Graph g(2);
  EXPECT_THROW(g.addEdge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 5, 1.0), std::out_of_range);
}

TEST(GraphTest, ComponentsIdentified) {
  Graph g(5);
  g.addEdge(0, 1, 1.0);
  g.addEdge(2, 3, 1.0);
  const auto comps = g.components();
  EXPECT_EQ(comps.size(), 3u);  // {0,1}, {2,3}, {4}
  EXPECT_FALSE(g.isConnected());
}

TEST(GraphTest, ConnectivityDetected) {
  Graph g(4);
  g.addEdge(0, 1, 1.0);
  g.addEdge(1, 2, 1.0);
  g.addEdge(2, 3, 1.0);
  EXPECT_TRUE(g.isConnected());
}

TEST(GraphTest, SingleNodeConnected) {
  Graph g(1);
  EXPECT_TRUE(g.isConnected());
  EXPECT_EQ(g.components().size(), 1u);
}

}  // namespace
}  // namespace pscd
