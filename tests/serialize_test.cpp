#include "pscd/workload/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>

namespace pscd {
namespace {

WorkloadParams tinyParams() {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 200;
  p.publishing.numUpdatedPages = 80;
  p.publishing.maxVersionsPerPage = 10;
  p.request.totalRequests = 3000;
  p.request.numProxies = 8;
  p.request.minServerPool = 2;
  p.seed = 11;
  return p;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const Workload w = buildWorkload(tinyParams());
  std::stringstream buf;
  saveWorkload(w, buf);
  const Workload r = loadWorkload(buf);
  EXPECT_EQ(r.numPages(), w.numPages());
  EXPECT_EQ(r.publishes.size(), w.publishes.size());
  ASSERT_EQ(r.requests.size(), w.requests.size());
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    EXPECT_EQ(r.requests[i].page, w.requests[i].page);
    EXPECT_EQ(r.requests[i].proxy, w.requests[i].proxy);
    EXPECT_DOUBLE_EQ(r.requests[i].time, w.requests[i].time);
  }
  EXPECT_EQ(r.subOffsets, w.subOffsets);
  ASSERT_EQ(r.subEntries.size(), w.subEntries.size());
  for (std::size_t i = 0; i < w.subEntries.size(); ++i) {
    EXPECT_EQ(r.subEntries[i], w.subEntries[i]);
  }
  EXPECT_EQ(r.uniqueBytesRequested, w.uniqueBytesRequested);
  EXPECT_DOUBLE_EQ(r.params.request.zipfAlpha, w.params.request.zipfAlpha);
}

TEST(SerializeTest, FileRoundTrip) {
  const Workload w = buildWorkload(tinyParams());
  const std::string path = testing::TempDir() + "/pscd_trace.bin";
  saveWorkloadFile(w, path);
  const Workload r = loadWorkloadFile(path);
  EXPECT_EQ(r.requests.size(), w.requests.size());
}

TEST(SerializeTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTATRACE-----------------";
  EXPECT_THROW(loadWorkload(buf), std::runtime_error);
}

TEST(SerializeTest, TruncationRejected) {
  const Workload w = buildWorkload(tinyParams());
  std::stringstream buf;
  saveWorkload(w, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(loadWorkload(cut), std::runtime_error);
}

std::string savedBytes(const Workload& w) {
  std::stringstream buf;
  saveWorkload(w, buf);
  return buf.str();
}

std::string loadError(const std::string& bytes) {
  std::stringstream in(bytes);
  try {
    loadWorkload(in);
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

// Section offsets within the stream (all sizes are fixed-width PODs).
constexpr std::size_t kParamsOffset = 8 + sizeof(std::uint32_t);
constexpr std::size_t kPagesOffset = kParamsOffset + sizeof(WorkloadParams);

TEST(SerializeTest, TruncationErrorNamesOffendingField) {
  const std::string full = savedBytes(buildWorkload(tinyParams()));
  EXPECT_NE(loadError(full.substr(0, 5)).find("magic"), std::string::npos);
  EXPECT_NE(loadError(full.substr(0, kParamsOffset + 7)).find("params"),
            std::string::npos);
  // Inside the pages payload, past its length prefix.
  EXPECT_NE(loadError(full.substr(0, kPagesOffset + 8 + 3)).find("pages"),
            std::string::npos);
}

TEST(SerializeTest, OversizedLengthFieldRejectedByName) {
  std::string bytes = savedBytes(buildWorkload(tinyParams()));
  // Overwrite the pages vector length with an absurd element count.
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + kPagesOffset, &huge, sizeof(huge));
  EXPECT_NE(loadError(bytes).find("bad length for pages"),
            std::string::npos);
}

TEST(SerializeTest, InvalidNotificationDrivenByteRejected) {
  Workload w = buildWorkload(tinyParams());
  ASSERT_FALSE(w.requests.empty());
  std::string bytes = savedBytes(w);
  // Locate the first RequestEvent record: params, pages and publishes
  // precede the requests vector, each vector with a u64 length prefix.
  const std::size_t requestsOffset =
      kPagesOffset + 8 + w.pages.size() * sizeof(PageInfo) + 8 +
      w.publishes.size() * sizeof(PublishEvent) + 8;
  // The bool lives after time (8) + page (4) + proxy (4).
  bytes[requestsOffset + 16] = 0x07;
  EXPECT_NE(loadError(bytes).find("notificationDriven"), std::string::npos);
}

TEST(SerializeTest, RoundTripPreservesNotificationDrivenFlags) {
  Workload w = buildWorkload(tinyParams());
  ASSERT_GE(w.requests.size(), 4u);
  w.requests[1].notificationDriven = false;
  w.requests[3].notificationDriven = false;
  std::stringstream buf;
  saveWorkload(w, buf);
  const Workload r = loadWorkload(buf);
  ASSERT_EQ(r.requests.size(), w.requests.size());
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    EXPECT_EQ(r.requests[i].notificationDriven,
              w.requests[i].notificationDriven);
  }
}

TEST(SerializeTest, NonFiniteEventTimeRejectedOnLoad) {
  Workload w = buildWorkload(tinyParams());
  ASSERT_FALSE(w.publishes.empty());
  w.publishes.front().time = std::numeric_limits<double>::quiet_NaN();
  std::stringstream buf;
  saveWorkload(w, buf);
  EXPECT_THROW(loadWorkload(buf), std::logic_error);
}

TEST(SerializeTest, SavedBytesAreDeterministic) {
  const Workload w = buildWorkload(tinyParams());
  // Two saves must be byte-identical: the request records go through a
  // zero-padded disk mirror, so no uninitialized padding leaks out.
  EXPECT_EQ(savedBytes(w), savedBytes(w));
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(loadWorkloadFile("/nonexistent/pscd.bin"),
               std::runtime_error);
}

TEST(SerializeTest, PublishCsvHasHeaderAndRows) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportPublishesCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("time,page,version,size", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            w.publishes.size() + 1);
}

TEST(SerializeTest, RequestsCsvRowCount) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportRequestsCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            w.requests.size() + 1);
}

TEST(SerializeTest, SubscriptionsCsvRowCount) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportSubscriptionsCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            w.subEntries.size() + 1);
}

}  // namespace
}  // namespace pscd
