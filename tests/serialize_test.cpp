#include "pscd/workload/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace pscd {
namespace {

WorkloadParams tinyParams() {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 200;
  p.publishing.numUpdatedPages = 80;
  p.publishing.maxVersionsPerPage = 10;
  p.request.totalRequests = 3000;
  p.request.numProxies = 8;
  p.request.minServerPool = 2;
  p.seed = 11;
  return p;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const Workload w = buildWorkload(tinyParams());
  std::stringstream buf;
  saveWorkload(w, buf);
  const Workload r = loadWorkload(buf);
  EXPECT_EQ(r.numPages(), w.numPages());
  EXPECT_EQ(r.publishes.size(), w.publishes.size());
  ASSERT_EQ(r.requests.size(), w.requests.size());
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    EXPECT_EQ(r.requests[i].page, w.requests[i].page);
    EXPECT_EQ(r.requests[i].proxy, w.requests[i].proxy);
    EXPECT_DOUBLE_EQ(r.requests[i].time, w.requests[i].time);
  }
  EXPECT_EQ(r.subOffsets, w.subOffsets);
  ASSERT_EQ(r.subEntries.size(), w.subEntries.size());
  for (std::size_t i = 0; i < w.subEntries.size(); ++i) {
    EXPECT_EQ(r.subEntries[i], w.subEntries[i]);
  }
  EXPECT_EQ(r.uniqueBytesRequested, w.uniqueBytesRequested);
  EXPECT_DOUBLE_EQ(r.params.request.zipfAlpha, w.params.request.zipfAlpha);
}

TEST(SerializeTest, FileRoundTrip) {
  const Workload w = buildWorkload(tinyParams());
  const std::string path = testing::TempDir() + "/pscd_trace.bin";
  saveWorkloadFile(w, path);
  const Workload r = loadWorkloadFile(path);
  EXPECT_EQ(r.requests.size(), w.requests.size());
}

TEST(SerializeTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTATRACE-----------------";
  EXPECT_THROW(loadWorkload(buf), std::runtime_error);
}

TEST(SerializeTest, TruncationRejected) {
  const Workload w = buildWorkload(tinyParams());
  std::stringstream buf;
  saveWorkload(w, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(loadWorkload(cut), std::runtime_error);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(loadWorkloadFile("/nonexistent/pscd.bin"),
               std::runtime_error);
}

TEST(SerializeTest, PublishCsvHasHeaderAndRows) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportPublishesCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("time,page,version,size", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            w.publishes.size() + 1);
}

TEST(SerializeTest, RequestsCsvRowCount) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportRequestsCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            w.requests.size() + 1);
}

TEST(SerializeTest, SubscriptionsCsvRowCount) {
  const Workload w = buildWorkload(tinyParams());
  std::ostringstream os;
  exportSubscriptionsCsv(w, os);
  const std::string out = os.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            w.subEntries.size() + 1);
}

}  // namespace
}  // namespace pscd
