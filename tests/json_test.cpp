// Tests for the streaming JSON emitter: insertion-ordered keys, stable
// number formatting, loud failure on bracketing misuse, and the atomic
// tmp+rename file writer.
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "pscd/util/json.h"

namespace pscd {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, KeysKeepInsertionOrder) {
  JsonWriter w;
  w.beginObject();
  w.key("zebra").value(1);
  w.key("apple").value(2);
  w.endObject();
  EXPECT_EQ(w.str(), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.beginObject();
  w.key("schema").value("pscd-bench-micro-v1");
  w.key("ok").value(true);
  w.key("results").beginArray();
  w.beginObject();
  w.key("n").value(std::uint64_t{1000});
  w.endObject();
  w.value(-3);
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"schema\":\"pscd-bench-micro-v1\",\"ok\":true,"
            "\"results\":[{\"n\":1000},-3]}");
}

TEST(JsonWriter, NumberFormattingIsStable) {
  JsonWriter w;
  w.beginArray();
  w.value(2.0);     // integral double: no fraction
  w.value(0.5);     // exact binary fraction: shortest form
  w.value(-7.0);
  w.endArray();
  EXPECT_EQ(w.str(), "[2,0.5,-7]");
}

TEST(JsonWriter, NonFiniteNumbersThrow) {
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.value(std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.value(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
  }
}

TEST(JsonWriter, BracketingMisuseThrows) {
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key()
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.endObject(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.str(), std::logic_error);  // document still open
  }
  {
    JsonWriter w;
    w.beginObject();
    w.key("k");
    EXPECT_THROW(w.endObject(), std::logic_error);  // dangling key
  }
}

TEST(WriteTextFileAtomic, WritesAndOverwrites) {
  const std::string path = testing::TempDir() + "pscd_json_atomic.json";
  std::string error;
  ASSERT_TRUE(writeTextFileAtomic(path, "{\"v\":1}", &error)) << error;
  EXPECT_EQ(slurp(path), "{\"v\":1}");
  ASSERT_TRUE(writeTextFileAtomic(path, "{\"v\":2}", &error)) << error;
  EXPECT_EQ(slurp(path), "{\"v\":2}");
  // The temp sibling never outlives a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(WriteTextFileAtomic, FailureReportsError) {
  const std::string path =
      testing::TempDir() + "no_such_dir_pscd/deep/out.json";
  std::string error;
  EXPECT_FALSE(writeTextFileAtomic(path, "x", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace pscd
