// End-to-end serving-tier tests over 127.0.0.1 in one process: a
// ServeHost (epoll daemon + DistributionService behind WireClock/
// WireSink) on its own thread, WireClients on the test thread(s).
//
// The oracle tests exploit the runtime seam: an identically configured
// DistributionService driven *directly* (no sockets, fixed clock) must
// produce the same hits, misses, fan-outs, and byte counts as the
// daemon, because GD*/SUB cache decisions are value/match-count based
// and never read absolute time (ctx.now only stamps lastAccess). Any
// divergence means the wire tier changed engine behavior — exactly what
// the layering is supposed to prevent.
#include "pscd/net/daemon.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pscd/net/client.h"
#include "pscd/util/rng.h"

namespace pscd::net {
namespace {

/// Fixed-time clock for the oracle service: proves the comparison does
/// not depend on the daemon's wall clock.
class ZeroClock final : public Clock {
 public:
  SimTime now() const override { return 0.0; }
};

std::size_t countOpenFds() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

class ServeLoopbackTest : public ::testing::Test {
 protected:
  void StartHost(StrategyKind strategy = StrategyKind::kGDStar) {
    config_ = ServeHostConfig{};
    config_.numProxies = 4;
    config_.numTransitNodes = 4;
    config_.strategy = strategy;
    config_.capacityPerProxy = 4096;  // small: exercises eviction
    host_ = std::make_unique<ServeHost>(config_, DaemonConfig{});
    thread_ = std::thread([this] { host_->daemon().run(); });
  }

  void StopHost() {
    if (host_ && thread_.joinable()) {
      host_->daemon().stop();
      thread_.join();
    }
  }

  void TearDown() override { StopHost(); }

  WireClient connect() {
    return WireClient("127.0.0.1", host_->daemon().port());
  }

  // Drives the daemon and a direct oracle service through an identical
  // fixed-seed op stream and requires identical per-op responses and
  // final counters.
  void RunLockstep() {
    WireClient client = connect();
    const Network network = ServeHost::buildNetwork(config_);
    ZeroClock clock;
    WireSink sink;
    DistributionService oracle(network, clock, sink,
                               ServeHost::buildServiceConfig(config_));

    constexpr PageId kPages = 32;
    // Seed phase: publish every page once through both paths and lay
    // the same subscription grid.
    for (PageId page = 0; page < kPages; ++page) {
      ASSERT_TRUE(client.publish(page, 1, 100 + page * 13).ok());
      PublishEvent event;
      event.time = 0.0;
      event.page = page;
      event.version = 1;
      event.size = 100 + page * 13;
      oracle.handlePublish(event);
    }
    for (ProxyId proxy = 0; proxy < config_.numProxies; ++proxy) {
      for (PageId page = proxy; page < kPages; page += 3) {
        ASSERT_TRUE(client.subscribe(proxy, page).ok());
        oracle.broker().subscribeAggregated(proxy, page, 1);
      }
    }

    // Mixed fixed-seed stream: the daemon's wall clock and the oracle's
    // zero clock must not matter to any of the compared fields.
    Rng rng(2026);
    Version nextVersion = 2;
    for (int op = 0; op < 400; ++op) {
      const double pick = rng.uniform();
      if (pick < 0.25) {
        const auto page = static_cast<PageId>(rng.uniformInt(
            std::uint64_t{kPages}));
        const Bytes size = 80 + rng.uniformInt(std::uint64_t{400});
        const Version version = nextVersion++;
        const ResponseBody resp = client.publish(page, version, size);
        ASSERT_TRUE(resp.ok()) << "op " << op;
        PublishEvent event;
        event.time = 0.0;
        event.page = page;
        event.version = version;
        event.size = size;
        oracle.handlePublish(event);
        EXPECT_EQ(resp.pages, sink.lastPush().pages) << "op " << op;
        EXPECT_EQ(resp.bytes, sink.lastPush().bytes) << "op " << op;
      } else {
        const auto proxy = static_cast<ProxyId>(rng.uniformInt(
            std::uint64_t{config_.numProxies}));
        const auto page = static_cast<PageId>(rng.uniformInt(
            std::uint64_t{kPages}));
        const ResponseBody resp = client.request(proxy, page);
        ASSERT_TRUE(resp.ok()) << "op " << op;
        oracle.handleRequest(proxy, page);
        const RequestDelivery& d = sink.lastRequest();
        EXPECT_EQ(resp.hit != 0, d.hit) << "op " << op;
        EXPECT_EQ(resp.stale != 0, d.stale) << "op " << op;
        EXPECT_EQ(resp.bytes, d.bytesTransferred) << "op " << op;
        EXPECT_EQ(resp.responseTimeMs, d.responseTimeMs) << "op " << op;
      }
    }

    // Totals agree once the daemon is quiesced (reading its sink needs
    // the loop thread stopped).
    StopHost();
    const ServeCounters& daemon = host_->sink().counters();
    const ServeCounters& direct = sink.counters();
    EXPECT_EQ(daemon.requests, direct.requests);
    EXPECT_EQ(daemon.hits, direct.hits);
    EXPECT_EQ(daemon.staleServes, direct.staleServes);
    EXPECT_EQ(daemon.unavailable, direct.unavailable);
    EXPECT_EQ(daemon.requestBytes, direct.requestBytes);
    EXPECT_EQ(daemon.pushes, direct.pushes);
    EXPECT_EQ(daemon.pushedPages, direct.pushedPages);
    EXPECT_EQ(daemon.pushedBytes, direct.pushedBytes);
    EXPECT_GT(daemon.requests, 0u);
    EXPECT_GT(daemon.hits, 0u);  // the workload must exercise the cache
  }

  ServeHostConfig config_;
  std::unique_ptr<ServeHost> host_;
  std::thread thread_;
};

TEST_F(ServeLoopbackTest, SubscribePublishNotifyFanout) {
  // SG2 places on push (GD* is access-placement: it would admit no
  // pushed page and the fan-out below would be legitimately empty).
  StartHost(StrategyKind::kSG2);
  WireClient client = connect();

  // Aggregated counts at two proxies; the third stays silent.
  EXPECT_TRUE(client.subscribe(0, 7, 3).ok());
  EXPECT_TRUE(client.subscribe(1, 7, 1).ok());
  EXPECT_TRUE(client.subscribe(2, 8, 2).ok());

  // Oracle: the same broker state driven directly.
  const Network network = ServeHost::buildNetwork(config_);
  ZeroClock clock;
  WireSink sink;
  DistributionService oracle(network, clock, sink,
                             ServeHost::buildServiceConfig(config_));
  oracle.broker().subscribeAggregated(0, 7, 3);
  oracle.broker().subscribeAggregated(1, 7, 1);
  oracle.broker().subscribeAggregated(2, 8, 2);

  const ResponseBody push = client.publish(7, 1, 500);
  ASSERT_TRUE(push.ok());
  PublishEvent event;
  event.time = 0.0;
  event.page = 7;
  event.version = 1;
  event.size = 500;
  oracle.handlePublish(event);
  EXPECT_EQ(push.pages, sink.lastPush().pages);
  EXPECT_EQ(push.bytes, sink.lastPush().bytes);
  EXPECT_GT(push.pages, 0u);  // two matching proxies: a real fan-out

  // Unsubscribing reports the removed count both ways.
  const ResponseBody unsub = client.unsubscribe(0, 7, 2);
  ASSERT_TRUE(unsub.ok());
  EXPECT_EQ(unsub.pages, oracle.broker().unsubscribeAggregated(0, 7, 2));
}

TEST_F(ServeLoopbackTest, GdStarLockstepAgainstDirectOracle) {
  StartHost(StrategyKind::kGDStar);
  RunLockstep();
}

TEST_F(ServeLoopbackTest, SubStrategyLockstepAgainstDirectOracle) {
  StartHost(StrategyKind::kSUB);
  RunLockstep();
}

TEST_F(ServeLoopbackTest, ErrorResponsesKeepTheConnectionAlive) {
  StartHost();
  WireClient client = connect();
  ASSERT_TRUE(client.publish(1, 1, 64).ok());

  // Unknown page, out-of-range proxy, and zero-size publish each earn a
  // status=kError RESPONSE with a zeroed payload...
  const ResponseBody unknown = client.request(0, 999);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.pages, 0u);
  EXPECT_EQ(unknown.bytes, 0u);
  EXPECT_FALSE(client.request(99, 1).ok());
  EXPECT_FALSE(client.subscribe(99, 1).ok());
  EXPECT_FALSE(client.publish(2, 1, 0).ok());

  // ...and the connection (and service state) live on.
  EXPECT_TRUE(client.request(0, 1).ok());
  EXPECT_TRUE(client.subscribe(0, 1).ok());

  StopHost();
  EXPECT_EQ(host_->daemon().stats().errorResponses, 4u);
  EXPECT_EQ(host_->daemon().stats().decodeErrors, 0u);
}

TEST_F(ServeLoopbackTest, GarbageBytesCloseOnlyThatConnection) {
  StartHost();
  WireClient bad = connect();
  WireClient good = connect();
  ASSERT_TRUE(good.publish(1, 1, 64).ok());

  bad.sendRaw("this is definitely not a PSC1 frame........");
  EXPECT_THROW(bad.request(0, 1), std::runtime_error);
  EXPECT_FALSE(bad.connected());

  // The other connection is unaffected.
  EXPECT_TRUE(good.request(0, 1).ok());

  StopHost();
  EXPECT_EQ(host_->daemon().stats().decodeErrors, 1u);
}

TEST_F(ServeLoopbackTest, ClientResponseFrameIsAProtocolError) {
  StartHost();
  WireClient client = connect();
  WireFrame frame;
  frame.seq = 1;
  frame.body = ResponseBody{0, static_cast<std::uint8_t>(FrameType::kRequest),
                            0, 0, 0, 0, 0.0};
  client.sendRaw(encodeFrame(frame));
  // The daemon closes without answering; the next call hits EOF.
  EXPECT_THROW(client.request(0, 1), std::runtime_error);
  StopHost();
  EXPECT_EQ(host_->daemon().stats().protocolErrors, 1u);
}

TEST_F(ServeLoopbackTest, MultiClientConcurrentSmoke) {
  StartHost();
  {
    WireClient seeder = connect();
    for (PageId page = 0; page < 16; ++page) {
      ASSERT_TRUE(seeder.publish(page, 1, 128).ok());
    }
  }
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 50;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      try {
        WireClient client = connect();
        Rng rng(100 + static_cast<std::uint64_t>(c));
        for (int i = 0; i < kOpsPerClient; ++i) {
          const auto proxy = static_cast<ProxyId>(rng.uniformInt(
              std::uint64_t{4}));
          const auto page = static_cast<PageId>(rng.uniformInt(
              std::uint64_t{16}));
          if (!client.request(proxy, page).ok()) {
            failures[static_cast<std::size_t>(c)] = "error response";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  }
  StopHost();
  // Every request (and only those) hit the service's counters.
  EXPECT_EQ(host_->sink().counters().requests,
            static_cast<std::uint64_t>(kClients * kOpsPerClient));
  EXPECT_EQ(host_->daemon().stats().accepted,
            static_cast<std::uint64_t>(kClients + 1));
}

TEST(ServeLoopbackShutdown, CleanShutdownLeaksNoFds) {
  const std::size_t before = countOpenFds();
  {
    ServeHostConfig config;
    config.numProxies = 2;
    config.numTransitNodes = 2;
    ServeHost host(config, DaemonConfig{});
    std::thread server([&host] { host.daemon().run(); });
    {
      WireClient a("127.0.0.1", host.daemon().port());
      WireClient b("127.0.0.1", host.daemon().port());
      ASSERT_TRUE(a.publish(1, 1, 64).ok());
      ASSERT_TRUE(b.request(0, 1).ok());
      // `b` is still connected when the daemon stops: shutdown must
      // also reap server-side fds for live connections.
      host.daemon().stop();
      server.join();
    }
  }
  EXPECT_EQ(countOpenFds(), before);
}

TEST(ServeLoopbackShutdown, StopBeforeRunAndDoubleRunAreSafe) {
  ServeHostConfig config;
  config.numProxies = 2;
  config.numTransitNodes = 2;
  ServeHost host(config, DaemonConfig{});
  host.daemon().stop();   // before run(): run must return immediately
  host.daemon().run();
  EXPECT_THROW(host.daemon().run(), std::logic_error);
}

}  // namespace
}  // namespace pscd::net
