// Exercises the deep invariant validators: every subsystem's
// checkInvariants() must pass on organically built state and must
// detect deliberately corrupted state. Corruption goes through the
// InvariantCorrupter friend so the tests can reach internal bookkeeping
// that the public API (correctly) never lets drift.
#include <gtest/gtest.h>

#include <utility>

#include "pscd/cache/dual_cache.h"
#include "pscd/cache/dual_methods.h"
#include "pscd/cache/gds_family.h"
#include "pscd/cache/lru_strategy.h"
#include "pscd/cache/value_cache.h"
#include "pscd/core/engine.h"
#include "pscd/pubsub/broker.h"
#include "pscd/pubsub/matcher.h"
#include "pscd/sim/simulator.h"
#include "pscd/topology/graph.h"
#include "pscd/topology/network.h"
#include "pscd/topology/shortest_path.h"
#include "pscd/util/check.h"
#include "pscd/workload/workload.h"

namespace pscd {

/// Test-only backdoor (friended by the core containers) that damages
/// internal state in ways the public API prevents.
class InvariantCorrupter {
 public:
  static void driftUsedBytes(ValueCache& c) { ++c.used_; }
  static void desyncIndexValue(ValueCache& c) {
    c.entries_.begin()->second.value += 1.0;  // index_ not re-keyed
  }
  static void dropIndexEntry(ValueCache& c) {
    c.index_.erase(c.index_.begin());
  }

  static void driftUsedBytes(DualMethodsStrategy& s) { ++s.used_; }
  static void driftUsedBytes(LruStrategy& s) { ++s.used_; }
  static void detachMapNode(LruStrategy& s) {
    // Point the map at the wrong list node (self-consistent sizes).
    auto second = std::next(s.lru_.begin());
    s.map_[s.lru_.begin()->page] = second;
  }

  static void inflateLiveCount(MatchingEngine& m) { ++m.liveCount_; }
  static void duplicatePosting(MatchingEngine& m) {
    auto& list = m.index_.begin()->second;
    list.push_back(list.front());
  }

  static void unsortAggregation(Broker& b) {
    auto& list = b.aggregated_.begin()->second;
    ASSERT_GE(list.size(), 2u);
    std::swap(list.front(), list.back());
  }

  static void skewEdgeWeight(Graph& g) {
    // Raise one direction of an undirected edge only.
    for (auto& edges : g.adj_) {
      if (!edges.empty()) {
        edges.front().weight += 1.0;
        return;
      }
    }
    FAIL() << "graph has no edges to corrupt";
  }
  static void driftEdgeCount(Graph& g) { ++g.edges_; }

  static void skewFetchCost(Network& n) { n.fetchCost_.front() *= 2.0; }
};

namespace {

CacheEntry entry(PageId page, Bytes size) {
  CacheEntry e;
  e.page = page;
  e.size = size;
  return e;
}

ValueCache populatedCache() {
  ValueCache c(100);
  c.insertNoEvict(entry(1, 30), 1.0);
  c.insertNoEvict(entry(2, 30), 2.0);
  c.insertNoEvict(entry(3, 30), 3.0);
  c.checkInvariants();  // sanity: valid before corruption
  return c;
}

TEST(ValueCacheInvariantsTest, DetectsByteAccountingDrift) {
  ValueCache c = populatedCache();
  InvariantCorrupter::driftUsedBytes(c);
  EXPECT_THROW(c.checkInvariants(), CheckFailure);
}

TEST(ValueCacheInvariantsTest, DetectsStaleIndexKey) {
  ValueCache c = populatedCache();
  InvariantCorrupter::desyncIndexValue(c);
  EXPECT_THROW(c.checkInvariants(), CheckFailure);
}

TEST(ValueCacheInvariantsTest, DetectsMissingIndexEntry) {
  ValueCache c = populatedCache();
  InvariantCorrupter::dropIndexEntry(c);
  EXPECT_THROW(c.checkInvariants(), CheckFailure);
}

TEST(DualMethodsInvariantsTest, PassesOrganicStateAndDetectsDrift) {
  DualMethodsStrategy s(100, 1.0, 2.0);
  PushContext push;
  push.page = 1;
  push.version = 1;
  push.size = 40;
  push.subCount = 3;
  s.onPush(push);
  RequestContext req;
  req.page = 2;
  req.latestVersion = 1;
  req.size = 30;
  req.now = 1.0;
  s.onRequest(req);
  s.checkInvariants();
  InvariantCorrupter::driftUsedBytes(s);
  EXPECT_THROW(s.checkInvariants(), CheckFailure);
}

TEST(LruInvariantsTest, DetectsDriftAndDanglingMapNodes) {
  LruStrategy s(100);
  for (PageId p = 1; p <= 3; ++p) {
    RequestContext req;
    req.page = p;
    req.latestVersion = 1;
    req.size = 20;
    req.now = static_cast<SimTime>(p);
    s.onRequest(req);
  }
  s.checkInvariants();

  LruStrategy drifted(100);
  RequestContext req;
  req.page = 1;
  req.latestVersion = 1;
  req.size = 20;
  drifted.onRequest(req);
  InvariantCorrupter::driftUsedBytes(drifted);
  EXPECT_THROW(drifted.checkInvariants(), CheckFailure);

  InvariantCorrupter::detachMapNode(s);
  EXPECT_THROW(s.checkInvariants(), CheckFailure);
}

TEST(GdsFamilyInvariantsTest, CorruptingTheUnderlyingCacheIsDetected) {
  GdsFamilyStrategy s(100, 1.0, gdStarConfig(2.0));
  RequestContext req;
  req.page = 7;
  req.latestVersion = 1;
  req.size = 25;
  req.now = 1.0;
  s.onRequest(req);
  s.checkInvariants();
  // The cache() accessor is const; the corrupter is a friend of
  // ValueCache itself, so a const_cast models in-memory corruption.
  InvariantCorrupter::driftUsedBytes(const_cast<ValueCache&>(s.cache()));
  EXPECT_THROW(s.checkInvariants(), CheckFailure);
}

TEST(DualCacheInvariantsTest, CorruptedPartitionIsDetected) {
  DualCacheConfig config;
  config.mode = PartitionMode::kAdaptive;
  DualCacheStrategy s(100, 1.0, config);
  PushContext push;
  push.page = 1;
  push.version = 1;
  push.size = 20;
  push.subCount = 2;
  s.onPush(push);
  s.checkInvariants();
  InvariantCorrupter::driftUsedBytes(
      const_cast<ValueCache&>(s.pushCache()));
  EXPECT_THROW(s.checkInvariants(), CheckFailure);
}

MatchingEngine populatedMatcher() {
  MatchingEngine m;
  Subscription a;
  a.proxy = 0;
  a.conjuncts = {{Predicate::Kind::kCategoryEq, 4},
                 {Predicate::Kind::kKeywordContains, 9}};
  Subscription b;
  b.proxy = 1;
  b.conjuncts = {{Predicate::Kind::kCategoryEq, 4}};
  m.addSubscription(std::move(a));
  m.addSubscription(std::move(b));
  m.checkInvariants();
  return m;
}

TEST(MatcherInvariantsTest, DetectsLiveCounterDrift) {
  MatchingEngine m = populatedMatcher();
  InvariantCorrupter::inflateLiveCount(m);
  EXPECT_THROW(m.checkInvariants(), CheckFailure);
}

TEST(MatcherInvariantsTest, DetectsDuplicatedPosting) {
  MatchingEngine m = populatedMatcher();
  InvariantCorrupter::duplicatePosting(m);
  EXPECT_THROW(m.checkInvariants(), CheckFailure);
}

TEST(MatcherInvariantsTest, RemovalKeepsInvariants) {
  MatchingEngine m = populatedMatcher();
  EXPECT_TRUE(m.removeSubscription(0));
  m.checkInvariants();  // lazy deletion keeps postings consistent
}

TEST(BrokerInvariantsTest, DetectsUnsortedAggregationList) {
  Broker b(4);
  b.subscribeAggregated(1, 10, 2);
  b.subscribeAggregated(3, 10, 1);
  b.checkInvariants();
  InvariantCorrupter::unsortAggregation(b);
  EXPECT_THROW(b.checkInvariants(), CheckFailure);
}

TEST(BrokerInvariantsTest, ChurnLeavesNoEmptyLists) {
  Broker b(4);
  b.subscribeAggregated(1, 10, 1);
  EXPECT_EQ(b.unsubscribeAggregated(1, 10, 1), 1u);
  b.checkInvariants();
  EXPECT_EQ(b.aggregatedCount(1, 10), 0u);
}

Graph smallGraph() {
  Graph g(4);
  g.addEdge(0, 1, 1.0);
  g.addEdge(1, 2, 2.0);
  g.addEdge(2, 3, 1.5);
  g.addEdge(0, 3, 5.0);
  g.checkInvariants();
  return g;
}

TEST(GraphInvariantsTest, DetectsAsymmetricWeights) {
  Graph g = smallGraph();
  InvariantCorrupter::skewEdgeWeight(g);
  EXPECT_THROW(g.checkInvariants(), CheckFailure);
}

TEST(GraphInvariantsTest, DetectsEdgeCounterDrift) {
  Graph g = smallGraph();
  InvariantCorrupter::driftEdgeCount(g);
  EXPECT_THROW(g.checkInvariants(), CheckFailure);
}

TEST(ShortestPathInvariantsTest, AcceptsDijkstraOutputRejectsTampering) {
  const Graph g = smallGraph();
  std::vector<double> dist = shortestPaths(g, 0);
  checkShortestPathTree(g, 0, dist);
  dist[2] += 0.5;  // no longer tight/relaxed
  EXPECT_THROW(checkShortestPathTree(g, 0, dist), CheckFailure);
}

TEST(NetworkInvariantsTest, PassesFreshAndDetectsSkewedCosts) {
  Rng rng(11);
  Network n(NetworkParams{.numProxies = 10, .numTransitNodes = 5}, rng);
  n.checkInvariants();
  InvariantCorrupter::skewFetchCost(n);
  EXPECT_THROW(n.checkInvariants(), CheckFailure);
}

TEST(EngineInvariantsTest, EndToEndStateStaysValid) {
  Rng rng(5);
  Network network(NetworkParams{.numProxies = 4, .numTransitNodes = 2}, rng);
  EngineConfig ec;
  ec.strategy = StrategyKind::kSG2;
  ec.beta = 2.0;
  ec.proxyCapacities = {200, 200, 200, 200};
  ContentDistributionEngine engine(network, std::move(ec));
  engine.broker().subscribeAggregated(0, 1, 2);
  engine.broker().subscribeAggregated(2, 1, 1);
  PublishEvent ev;
  ev.page = 1;
  ev.version = 1;
  ev.size = 50;
  ev.time = 0.5;
  engine.publish(ev);
  engine.request(0, 1, 1.0);
  engine.request(1, 1, 1.5);
  EXPECT_NO_THROW(engine.checkInvariants());
}

TEST(SimulatorSelfCheckTest, HourlySelfCheckRunsGreenEndToEnd) {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 120;
  p.publishing.numUpdatedPages = 50;
  p.publishing.maxVersionsPerPage = 10;
  p.request.totalRequests = 2500;
  p.request.numProxies = 5;
  p.request.minServerPool = 2;
  p.seed = 17;
  const Workload workload = buildWorkload(p);
  Rng rng(9);
  Network network(
      NetworkParams{.numProxies = 5, .numTransitNodes = 3}, rng);
  SimConfig config;
  config.strategy = StrategyKind::kDCAP;
  config.capacityFraction = 0.05;
  config.selfCheckHourly = true;
  EXPECT_NO_THROW(Simulator(workload, network, config).run());
}

}  // namespace
}  // namespace pscd
