#include "pscd/sim/hierarchy.h"

#include <gtest/gtest.h>

#include "pscd/sim/simulator.h"

namespace pscd {
namespace {

WorkloadParams miniParams() {
  WorkloadParams p = newsTraceParams();
  p.publishing.numPages = 400;
  p.publishing.numUpdatedPages = 160;
  p.publishing.maxVersionsPerPage = 25;
  p.request.totalRequests = 12000;
  p.request.numProxies = 12;
  p.request.minServerPool = 3;
  p.seed = 5;
  return p;
}

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : workload_(buildWorkload(miniParams())),
        rng_(13),
        network_(NetworkParams{.numProxies = 12}, rng_) {}

  HierarchyResult run(HierarchyConfig config) {
    return runHierarchical(workload_, network_, config);
  }

  Workload workload_;
  Rng rng_;
  Network network_;
};

TEST_F(HierarchyTest, ProcessesWholeTrace) {
  const auto r = run({});
  EXPECT_EQ(r.requests, workload_.requests.size());
  EXPECT_GT(r.leafHitRatio(), 0.0);
  EXPECT_GE(r.combinedHitRatio(), r.leafHitRatio());
  EXPECT_LE(r.combinedHitRatio(), 1.0);
}

TEST_F(HierarchyTest, LeafTierMatchesFlatSimulator) {
  // With the same leaf strategy and capacity, the hierarchy's leaf tier
  // behaves exactly like the flat simulator (the parent tier only sees
  // misses and cannot change leaf behaviour).
  HierarchyConfig hc;
  hc.leafStrategy = StrategyKind::kGDStar;
  hc.leafCapacityFraction = 0.05;
  const auto hier = run(hc);
  SimConfig sc;
  sc.strategy = StrategyKind::kGDStar;
  sc.beta = 2.0;
  sc.capacityFraction = 0.05;
  const auto flat = Simulator(workload_, network_, sc).run();
  EXPECT_EQ(hier.leafHits, flat.hits());
}

TEST_F(HierarchyTest, ParentTierRescuesMisses) {
  const auto r = run({});
  EXPECT_GT(r.parentHits, 0u);
}

TEST_F(HierarchyTest, ResponseTimeBetweenBounds) {
  HierarchyConfig hc;
  const auto r = run(hc);
  EXPECT_GE(r.meanResponseTimeMs, hc.leafLatencyMs);
  EXPECT_LE(r.meanResponseTimeMs, hc.publisherLatencyMs);
}

TEST_F(HierarchyTest, BiggerParentsServeMoreMisses) {
  HierarchyConfig small;
  small.parentCapacityFraction = 0.01;
  HierarchyConfig large;
  large.parentCapacityFraction = 0.30;
  EXPECT_GE(run(large).parentHits, run(small).parentHits);
}

TEST_F(HierarchyTest, FewerParentsMeanLargerSubtrees) {
  // One parent aggregates everything; its subtree filter still works.
  HierarchyConfig hc;
  hc.numParents = 1;
  const auto r = run(hc);
  EXPECT_EQ(r.requests, workload_.requests.size());
  EXPECT_GT(r.parentHits, 0u);
}

TEST_F(HierarchyTest, PushCapableParentsReceivePushes) {
  HierarchyConfig push;
  push.leafStrategy = StrategyKind::kSG2;
  push.parentStrategy = StrategyKind::kSG2;
  const auto withPush = run(push);
  // Push-based leaves already intercept most requests, so the parent
  // tier adds less than it does for the access-only baseline.
  HierarchyConfig passive;
  const auto withoutPush = run(passive);
  EXPECT_GT(withPush.leafHitRatio(), withoutPush.leafHitRatio());
  EXPECT_LT(withPush.combinedHitRatio() - withPush.leafHitRatio(),
            withoutPush.combinedHitRatio() - withoutPush.leafHitRatio());
}

TEST_F(HierarchyTest, InvalidConfigRejected) {
  HierarchyConfig hc;
  hc.numParents = 0;
  EXPECT_THROW(run(hc), std::invalid_argument);
  Rng rng(1);
  const Network other(NetworkParams{.numProxies = 3}, rng);
  EXPECT_THROW(runHierarchical(workload_, other, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pscd
