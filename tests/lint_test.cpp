// Unit tests for pscd_lint: lexer edge cases, every rule firing and not
// over-firing, suppression directives, and driver exit codes. Violation
// snippets live in string literals, which the linter's own lexer strips
// — so this file stays clean under the repo-wide `lint.repo_clean` run.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"
#include "lint.h"
#include "rules.h"

namespace pscd_lint {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& src,
                         bool strict = false) {
  return lintSource(path, src, DeclInfo{}, strict);
}

std::string writeTemp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokensCarryLineNumbers) {
  const LexResult r = lex("int a;\nint b;\n");
  ASSERT_EQ(r.tokens.size(), 6u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[0].line, 1);
  EXPECT_EQ(r.tokens[3].text, "int");
  EXPECT_EQ(r.tokens[3].line, 2);
  EXPECT_EQ(r.tokens[4].text, "b");
}

TEST(Lexer, CommentsAndStringsAreStripped) {
  const LexResult r =
      lex("int a = /* hidden */ 3; // tail\nconst char* s = \"mt19937\";\n");
  for (const Token& t : r.tokens) {
    EXPECT_NE(t.text, "hidden");
    EXPECT_NE(t.text, "tail");
    EXPECT_NE(t.text, "mt19937");  // string contents never become idents
  }
  // The string survives as a contentless placeholder token.
  int strings = 0;
  for (const Token& t : r.tokens)
    if (t.kind == Token::Kind::kString) ++strings;
  EXPECT_EQ(strings, 1);
}

TEST(Lexer, RawStringContentsAreInvisible) {
  const LexResult r = lex("auto s = R\"xx(rand() \" assert( )xx\";\nint z;\n");
  for (const Token& t : r.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
  }
  // Tokens after the raw string still lex on the right line.
  EXPECT_EQ(r.tokens.back().line, 2);
}

TEST(Lexer, ShiftRightIsSplitForTemplateMatching) {
  const LexResult r = lex("a >> b;");
  ASSERT_EQ(r.tokens.size(), 5u);
  EXPECT_EQ(r.tokens[1].text, ">");
  EXPECT_EQ(r.tokens[2].text, ">");
}

TEST(Lexer, PreprocessorLinesAreSkipped) {
  const LexResult r = lex("#include <chrono>\n#define WIDE 1\nint x;\n");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[0].line, 3);
}

TEST(Lexer, DirectiveInsidePreprocessorCommentIsSeen) {
  const LexResult r =
      lex("#define X 1  // pscd-lint: allow-file(wall-clock)\nint x;\n");
  EXPECT_EQ(r.directives.allowFile.count("wall-clock"), 1u);
}

TEST(Lexer, TrailingDirectiveTargetsItsOwnLine) {
  const LexResult r = lex("int a;\nint b;  // pscd-lint: allow(bare-assert)\n");
  ASSERT_EQ(r.directives.allow.count(2), 1u);
  EXPECT_EQ(r.directives.allow.at(2).count("bare-assert"), 1u);
}

TEST(Lexer, StandaloneDirectiveTargetsNextTokenLine) {
  const LexResult r = lex(
      "int a;\n"
      "// pscd-lint: allow(bare-assert) skip the blank line below\n"
      "\n"
      "int b;\n");
  ASSERT_EQ(r.directives.allow.count(4), 1u);
  EXPECT_EQ(r.directives.allow.at(4).count("bare-assert"), 1u);
}

TEST(Lexer, MultipleGroupsAndJustificationText) {
  const LexResult r = lex(
      "int a;  // pscd-lint: allow(bare-assert, naked-new) "
      "expect(wall-clock) reason text here\n");
  EXPECT_EQ(r.directives.allow.at(1).size(), 2u);
  EXPECT_EQ(r.directives.expect.at(1).count("wall-clock"), 1u);
  EXPECT_TRUE(r.directives.errors.empty());
}

TEST(Lexer, MalformedDirectiveIsRecorded) {
  const LexResult r = lex("int a;  // pscd-lint: bogus-no-parens\n");
  ASSERT_EQ(r.directives.errors.size(), 1u);
  EXPECT_EQ(r.directives.errors[0].first, 1);
}

TEST(Lexer, AsPathDirectiveIsCaptured) {
  const LexResult r = lex("// pscd-lint: as-path(src/pscd/x.cpp)\nint a;\n");
  EXPECT_EQ(r.directives.asPath, "src/pscd/x.cpp");
}

// ---------------------------------------------------------------------------
// Declaration harvesting
// ---------------------------------------------------------------------------

TEST(Decls, HarvestsUnorderedPtrVectorAndFloatNames) {
  const LexResult r = lex(
      "std::unordered_map<int, long> pages_;\n"
      "std::vector<Widget*> widgets_;\n"
      "std::vector<int> plain_;\n"
      "double ratio_ = 0.0;\n");
  const DeclInfo d = collectDecls(r.tokens);
  EXPECT_EQ(d.unorderedNames.count("pages_"), 1u);
  EXPECT_EQ(d.ptrVectorNames.count("widgets_"), 1u);
  EXPECT_EQ(d.ptrVectorNames.count("plain_"), 0u);
  EXPECT_EQ(d.floatNames.count("ratio_"), 1u);
}

// ---------------------------------------------------------------------------
// Rules: each must fire, and must not over-fire
// ---------------------------------------------------------------------------

TEST(Rules, WallClockFires) {
  const auto f =
      run("src/pscd/a.cpp", "auto t0 = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
}

TEST(Rules, WallClockAllowsTheShim) {
  EXPECT_TRUE(run("src/pscd/util/wallclock.h",
                  "auto t0 = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(Rules, WallClockIgnoresMemberNamedTime) {
  EXPECT_TRUE(run("src/pscd/a.cpp", "double t = request.time();\n").empty());
}

TEST(Rules, RandomSourceFires) {
  const auto f = run("bench/a.cpp", "std::mt19937 gen(1);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "random-source");
  const auto g = run("bench/a.cpp", "int r = rand() % 3;\n");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].rule, "random-source");
}

TEST(Rules, UnorderedIterFiresOnlyInCoreWithOutput) {
  const std::string src =
      "std::unordered_map<int, int> m;\n"
      "void f(std::ostream& os) {\n"
      "  for (const auto& kv : m) { os << kv.first; }\n"
      "}\n";
  const auto f = run("src/pscd/cache/a.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 3);
  // Out of scope: same code under bench/ is exempt.
  EXPECT_TRUE(run("bench/a.cpp", src).empty());
  // No output sink in the file: the fold cannot leak ordering.
  EXPECT_TRUE(run("src/pscd/cache/a.cpp",
                  "std::unordered_map<int, int> m;\n"
                  "int f() { int s = 0; for (const auto& kv : m) s += "
                  "kv.second; return s; }\n")
                  .empty());
}

TEST(Rules, UnorderedMembershipTestDoesNotFire) {
  EXPECT_TRUE(run("src/pscd/cache/a.cpp",
                  "std::unordered_map<int, int> m;\n"
                  "void f(std::ostream& os) {\n"
                  "  if (m.find(1) != m.end()) os << 1;\n"
                  "}\n")
                  .empty());
}

TEST(Rules, UnorderedIterUsesSiblingHeaderDecls) {
  DeclInfo header;
  header.unorderedNames.insert("m");
  const auto f = lintSource("src/pscd/cache/a.cpp",
                            "void f(std::ostream& os) {\n"
                            "  for (const auto& kv : m) { os << kv.first; }\n"
                            "}\n",
                            header, /*strict=*/false);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
}

TEST(Rules, PtrOrderFires) {
  const auto f = run("src/pscd/a.cpp", "std::less<Node*> cmp;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-order");
  const auto g = run("src/pscd/a.cpp", "bool b = a.get() < c.get();\n");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].rule, "ptr-order");
  // Identity comparison is fine; so is std::less over a value type.
  EXPECT_TRUE(run("src/pscd/a.cpp", "bool b = a.get() == raw;\n").empty());
  EXPECT_TRUE(run("src/pscd/a.cpp", "std::less<int> cmp;\n").empty());
}

TEST(Rules, PtrSortFiresWithoutComparator) {
  const std::string decl = "std::vector<Page*> pages;\n";
  const auto f =
      run("src/pscd/a.cpp", decl + "void f() { std::sort(pages.begin(), pages.end()); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-sort");
  EXPECT_TRUE(run("src/pscd/a.cpp",
                  decl +
                      "void f() { std::sort(pages.begin(), pages.end(), "
                      "byId); }\n")
                  .empty());
  // Value containers sort fine without a comparator.
  EXPECT_TRUE(run("src/pscd/a.cpp",
                  "std::vector<int> ids;\n"
                  "void f() { std::sort(ids.begin(), ids.end()); }\n")
                  .empty());
}

TEST(Rules, BareAssertFires) {
  const auto f = run("src/pscd/a.cpp", "void f(int x) { assert(x > 0); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "bare-assert");
  EXPECT_TRUE(
      run("src/pscd/a.cpp", "static_assert(true, \"compile time\");\n")
          .empty());
}

TEST(Rules, ThrowSiteFiresOnNonStdThrows) {
  const auto f = run("src/pscd/a.cpp", "void f() { throw 42; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "throw-site");
  const auto g = run("src/pscd/a.cpp", "void f() { throw MyError{}; }\n");
  ASSERT_EQ(g.size(), 1u);
  // Sanctioned: typed std:: construction, bare rethrow, check.h itself.
  EXPECT_TRUE(
      run("src/pscd/a.cpp",
          "void f() { throw std::invalid_argument(\"bad arg\"); }\n")
          .empty());
  EXPECT_TRUE(
      run("src/pscd/a.cpp", "void f() { try { g(); } catch (...) { throw; } }\n")
          .empty());
  EXPECT_TRUE(
      run("src/pscd/util/check.h", "void f() { throw CheckFailure(msg); }\n")
          .empty());
}

TEST(Rules, FloatCompareFiresOutsideTests) {
  const std::string src = "bool f(double a) { return a == 0.5; }\n";
  const auto f = run("src/pscd/a.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "float-compare");
  EXPECT_TRUE(run("tests/a_test.cpp", src).empty());
  // Integer equality is silent.
  EXPECT_TRUE(
      run("src/pscd/a.cpp", "bool f(int a, int b) { return a == b; }\n")
          .empty());
}

TEST(Rules, NakedNewFiresInLibraryOnly) {
  const std::string src = "void f() { int* p = new int; delete p; }\n";
  const auto f = run("src/pscd/a.cpp", src);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "naked-new");
  EXPECT_TRUE(run("bench/a.cpp", src).empty());
  // Deleted special members are not deallocations.
  EXPECT_TRUE(
      run("src/pscd/a.cpp", "struct S { S(const S&) = delete; };\n").empty());
}

TEST(Rules, EnvAccessFiresOutsideBenchCommon) {
  const std::string src = "const char* h = std::getenv(\"HOME\");\n";
  const auto f = run("src/pscd/a.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "env-access");
  EXPECT_TRUE(run("bench/bench_common.h", src).empty());
}

// ---------------------------------------------------------------------------
// Suppressions and strict hygiene
// ---------------------------------------------------------------------------

TEST(Suppressions, AllowSuppressesOnItsLine) {
  const auto f = run("src/pscd/a.cpp",
                     "void f(int x) { assert(x); }  "
                     "// pscd-lint: allow(bare-assert) justified\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppressions, AllowFileSuppressesEverywhere) {
  const auto f = run("src/pscd/a.cpp",
                     "// pscd-lint: allow-file(bare-assert) whole file\n"
                     "void f(int x) { assert(x); }\n"
                     "void g(int x) { assert(x); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppressions, AllowDoesNotLeakToOtherLines) {
  const auto f = run("src/pscd/a.cpp",
                     "void f(int x) { assert(x); }  "
                     "// pscd-lint: allow(bare-assert) this line only\n"
                     "void g(int x) { assert(x); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 2);
}

TEST(Strict, UnusedAllowIsFlagged) {
  const std::string src =
      "int x = 1;  // pscd-lint: allow(bare-assert) nothing here\n";
  EXPECT_TRUE(run("src/pscd/a.cpp", src, /*strict=*/false).empty());
  const auto f = run("src/pscd/a.cpp", src, /*strict=*/true);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "lint-directive");
}

TEST(Strict, UnknownRuleInAllowIsFlagged) {
  const auto f = run("src/pscd/a.cpp",
                     "int x = 1;  // pscd-lint: allow(no-such-rule)\n",
                     /*strict=*/true);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "lint-directive");
}

TEST(Strict, LintDirectiveFindingsAreSuppressible) {
  // Files documenting the directive syntax carry
  // allow-file(lint-directive); their example text must not fail strict.
  const auto f = run("src/pscd/a.cpp",
                     "// pscd-lint: allow-file(lint-directive) docs below\n"
                     "// pscd-lint: malformed example with no verb\n"
                     "int x = 1;\n",
                     /*strict=*/true);
  EXPECT_TRUE(f.empty());
}

TEST(Suppressions, AsPathControlsScopeButNotDisplayPath) {
  const auto f = run("tests/fixture.cpp",
                     "// pscd-lint: as-path(src/pscd/sim/x.cpp)\n"
                     "bool f(double a) { return a == 0.5; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "float-compare");
  EXPECT_EQ(f[0].path, "tests/fixture.cpp");
}

// ---------------------------------------------------------------------------
// Driver exit codes
// ---------------------------------------------------------------------------

int runWith(const std::vector<std::string>& args, std::string* output) {
  std::ostringstream out, err;
  const int code = runLint(args, out, err);
  if (output != nullptr) *output = out.str() + err.str();
  return code;
}

TEST(Driver, NoPathsIsUsageError) {
  std::string output;
  EXPECT_EQ(runWith({}, &output), 2);
  EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST(Driver, UnknownOptionIsUsageError) {
  EXPECT_EQ(runWith({"--frobnicate", "src"}, nullptr), 2);
}

TEST(Driver, MissingExcludeArgumentIsUsageError) {
  EXPECT_EQ(runWith({"src", "--exclude"}, nullptr), 2);
}

TEST(Driver, NonexistentPathIsIoError) {
  EXPECT_EQ(runWith({"no/such/path"}, nullptr), 2);
}

TEST(Driver, ListRulesSucceedsAndNamesEveryRule) {
  std::string output;
  EXPECT_EQ(runWith({"--list-rules"}, &output), 0);
  for (const Rule& r : ruleRegistry()) {
    EXPECT_NE(output.find(r.name), std::string::npos) << r.name;
  }
}

TEST(Driver, CleanFileExitsZero) {
  const std::string path =
      writeTemp("pscd_lint_clean.cpp", "int answer() { return 42; }\n");
  std::string output;
  EXPECT_EQ(runWith({path}, &output), 0);
  EXPECT_NE(output.find("clean"), std::string::npos);
}

TEST(Driver, FindingsExitOneWithMachineReadableLines) {
  const std::string path =
      writeTemp("pscd_lint_dirty.cpp", "std::mt19937 gen(1);\n");
  std::string output;
  EXPECT_EQ(runWith({path}, &output), 1);
  EXPECT_NE(output.find(":1:random-source:"), std::string::npos);
}

TEST(Driver, FixHintsPrintsRemediation) {
  const std::string path =
      writeTemp("pscd_lint_hint.cpp", "std::mt19937 gen(1);\n");
  std::string output;
  EXPECT_EQ(runWith({"--fix-hints", path}, &output), 1);
  EXPECT_NE(output.find("hint:"), std::string::npos);
}

TEST(Driver, CheckFixturesPassesAndFails) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "pscd_lint_fixture_dir/";
  fs::create_directories(dir);
  // A corpus whose expectation fires: only the coverage check fails,
  // because one file cannot exercise all rules.
  std::ofstream(dir + "fires.cpp")
      << "std::mt19937 gen(1);  // pscd-lint: expect(random-source)\n";
  std::string output;
  EXPECT_EQ(runWith({"--check-fixtures", dir + "fires.cpp"}, &output), 1);
  EXPECT_NE(output.find("no firing fixture"), std::string::npos);
  // An expectation that does not fire is a mismatch.
  std::ofstream(dir + "silent.cpp")
      << "int x = 1;  // pscd-lint: expect(random-source)\n";
  EXPECT_EQ(runWith({"--check-fixtures", dir + "silent.cpp"}, &output), 1);
  EXPECT_NE(output.find("DID NOT FIRE"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hot regions and the performance rule pack
// ---------------------------------------------------------------------------

TEST(HotRegions, HarvestsNameParamsAndBody) {
  const LexResult r = lex(
      "PSCD_HOT int fast(int a) { return a; }\n"
      "int cold(int b) { return b; }\n"
      "PSCD_HOT void decl(std::vector<int> xs);\n");
  const auto regions = collectHotRegions(r.tokens);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].name, "fast");
  EXPECT_GT(regions[0].paramEnd, regions[0].paramBegin);
  EXPECT_GT(regions[0].bodyBegin, regions[0].paramEnd);
  EXPECT_GT(regions[0].bodyEnd, regions[0].bodyBegin);
  EXPECT_EQ(regions[1].name, "decl");
  EXPECT_EQ(regions[1].bodyBegin, -1);  // declaration-only
}

TEST(HotRegions, SkipsNoexceptAndMemberInitParens) {
  const LexResult r = lex(
      "struct S {\n"
      "  int v;\n"
      "  PSCD_HOT explicit S(int a) noexcept : v(a) { v += 1; }\n"
      "};\n");
  const auto regions = collectHotRegions(r.tokens);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].name, "S");
  ASSERT_GE(regions[0].bodyBegin, 0);
  EXPECT_EQ(r.tokens[static_cast<std::size_t>(regions[0].bodyBegin)].text,
            "{");
  EXPECT_GT(regions[0].bodyEnd, regions[0].bodyBegin);
}

TEST(PerfRules, AllocInHotFiresOnlyInHotBodies) {
  const auto hot = run(
      "src/pscd/a.cpp", "PSCD_HOT int f() { std::vector<int> v; return 0; }\n");
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].rule, "alloc-in-hot");
  const auto cold =
      run("src/pscd/a.cpp", "int f() { std::vector<int> v; return 0; }\n");
  EXPECT_TRUE(cold.empty());
}

TEST(PerfRules, GrowWithoutReserveWantsAReserveCall) {
  const auto fires = run("src/pscd/a.cpp",
                         "PSCD_HOT void f(std::vector<int>& out) {\n"
                         "  for (int i = 0; i < 9; ++i) out.push_back(i);\n"
                         "}\n");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].rule, "grow-without-reserve");
  const auto silent = run("src/pscd/a.cpp",
                          "PSCD_HOT void f(std::vector<int>& out) {\n"
                          "  out.reserve(9);\n"
                          "  for (int i = 0; i < 9; ++i) out.push_back(i);\n"
                          "}\n");
  EXPECT_TRUE(silent.empty());
}

TEST(PerfRules, MapBracketInsertFiresInsideLoopsOnly) {
  const auto fires = run(
      "src/pscd/a.cpp",
      "struct S {\n"
      "  std::unordered_map<int, int> counts_;\n"
      "  PSCD_HOT void f() {\n"
      "    for (int i = 0; i < 9; ++i) counts_[i] = 1;\n"
      "  }\n"
      "};\n");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].rule, "map-bracket-insert");
  const auto silent = run(
      "src/pscd/a.cpp",
      "struct S {\n"
      "  std::unordered_map<int, int> counts_;\n"
      "  PSCD_HOT void f() { counts_[0] = 1; }\n"
      "};\n");
  EXPECT_TRUE(silent.empty());
}

TEST(PerfRules, CopyParamFiresOnDeclarationsToo) {
  const auto fires =
      run("src/pscd/a.cpp", "PSCD_HOT int f(std::vector<int> xs);\n");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].rule, "copy-param");
  const auto silent = run(
      "src/pscd/a.cpp",
      "PSCD_HOT int f(const std::vector<int>& xs) { return 0; }\n");
  EXPECT_TRUE(silent.empty());
}

TEST(PerfRules, CopyInLoopWantsAReferenceBinding) {
  const auto fires = run("src/pscd/a.cpp",
                         "PSCD_HOT int f(const std::vector<long>& xs) {\n"
                         "  int n = 0;\n"
                         "  for (auto x : xs) n += 1;\n"
                         "  return n;\n"
                         "}\n");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].rule, "copy-in-loop");
  const auto silent = run("src/pscd/a.cpp",
                          "PSCD_HOT int f(const std::vector<long>& xs) {\n"
                          "  int n = 0;\n"
                          "  for (const auto& x : xs) n += 1;\n"
                          "  return n;\n"
                          "}\n");
  EXPECT_TRUE(silent.empty());
}

TEST(PerfRules, SharedPtrCopyFiresButMoveIsSilent) {
  const auto fires =
      run("src/pscd/a.cpp",
          "PSCD_HOT void f(const std::shared_ptr<int>& p) {\n"
          "  std::shared_ptr<int> q = p;\n"
          "}\n");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].rule, "shared-ptr-copy-in-hot");
  const auto silent =
      run("src/pscd/a.cpp",
          "PSCD_HOT void f(std::shared_ptr<int>&& p) {\n"
          "  std::shared_ptr<int> q = std::move(p);\n"
          "}\n");
  EXPECT_TRUE(silent.empty());
}

TEST(PerfRules, HotFindingsAreSuppressible) {
  const auto f = run(
      "src/pscd/a.cpp",
      "PSCD_HOT std::vector<int> f() {\n"
      "  std::vector<int> v;  // pscd-lint: allow(alloc-in-hot) escapes\n"
      "  return v;\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(Driver, GithubModeEmitsWorkflowAnnotations) {
  const std::string path =
      writeTemp("pscd_lint_gh.cpp", "std::mt19937 gen(1);\n");
  std::string output;
  EXPECT_EQ(runWith({"--github", path}, &output), 1);
  EXPECT_NE(output.find("::error file="), std::string::npos);
  // ':' in the title property is %-escaped per the workflow-command rules.
  EXPECT_NE(output.find("title=pscd-lint%3A random-source"),
            std::string::npos);
}

TEST(Driver, ExcludeSkipsPrefix) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "pscd_lint_exclude_dir/";
  fs::create_directories(dir);
  std::ofstream(dir + "dirty.cpp") << "std::mt19937 gen(1);\n";
  std::string output;
  EXPECT_EQ(runWith({dir, "--exclude", dir + "dirty.cpp"}, &output), 0);
  EXPECT_NE(output.find("clean (0 files)"), std::string::npos);
}

}  // namespace
}  // namespace pscd_lint
